"""Cost-based logical rewrite pass (translation → **rewrite** → planning).

The translator emits algebra in whatever shape the em-allowed
compilation happens to produce; the paper leaves evaluation order among
equals free (Section 9's practical setting), and that freedom is where
an evaluator wins or loses its constant factors.  This pass sits
between :func:`repro.translate` output and the physical planner and
applies four families of semantics-preserving rewrites:

1. **Constant folding** — ``const op const`` conditions are decided at
   plan time (they cost one comparison per *row* at run time otherwise)
   and empty literal relations are propagated through the operators
   that annihilate on them.
2. **Selection / projection pushdown** — single-side join conditions
   move below the join, selections distribute through unions and into
   difference and :class:`~repro.algebra.ast.Enumerate` inputs, and
   dead columns are pruned below joins and products so intermediate
   tuples stay narrow.
3. **Greedy join reordering** — maximal Join/Product regions are
   flattened into (leaves, conditions), then rebuilt left-deep starting
   from the estimated-smallest leaf, preferring connected (condition-
   sharing) extensions, with every condition attached at the earliest
   join where its columns are available.  A restoring projection keeps
   the region's external column order unchanged.
4. **Common-subexpression detection** — structurally identical
   subplans (the [AB88] baseline emits the same ``AdomK`` scan and the
   same quantifier subplans many times) are reported to the planner,
   which computes each **once** behind a shared
   :class:`~repro.engine.operators.MaterializeOp` and re-reads the
   cached batches at every other occurrence.

Finally the (previously free-standing) build-side chooser
(:func:`repro.engine.optimizer.choose_build_sides`) runs over the
result.  Every rewrite here must preserve the anti-join pattern
(:func:`repro.engine.optimizer.match_anti_join`): walking through a
matched ``Diff`` rebuilds the canonical shape from **one** rewritten
context, because rewriting the two structurally equal occurrences
independently would silently downgrade the planner's anti-join to a
diff-over-join.

The pass is on by default; ``REPRO_OPTIMIZE=0`` (or
``--no-optimize``) disables it entirely, restoring the exact plans the
engine executed before the pass existed.
"""

from __future__ import annotations

import os
from collections import Counter
from dataclasses import dataclass
from typing import Iterable, Iterator, Mapping, Sequence

from repro.algebra.ast import (
    AdomK,
    AlgebraExpr,
    CConst,
    Col,
    ColExpr,
    Condition,
    Diff,
    Enumerate,
    Join,
    Lit,
    Product,
    Project,
    Select,
    Union,
    arity_of,
    colexpr_columns,
    compare_values,
)
from repro.algebra.simplifier import simplify
from repro.analysis.sanitizer import check_plan, verify_plans_enabled
from repro.analysis.validate import check_rewrites
from repro.core.schema import DatabaseSchema
from repro.engine.optimizer import (
    _shift_colexpr,
    choose_build_sides,
    match_anti_join,
    rebuild_anti_join,
)
from repro.engine.stats import InstanceStats, estimate_cardinality
from repro.errors import EvaluationError

__all__ = [
    "RewriteStep",
    "OptimizationResult",
    "optimize_enabled",
    "optimize_plan",
    "shared_subplans",
]

#: Environment variable gating the pass (default: enabled).
OPTIMIZE_ENV = "REPRO_OPTIMIZE"

#: Upper bound on pushdown/simplify alternation rounds.
MAX_PUSHDOWN_ROUNDS = 5


def optimize_enabled(override: bool | None = None) -> bool:
    """Resolve the optimizer switch: explicit override, else the
    ``REPRO_OPTIMIZE`` environment variable, else on."""
    if override is not None:
        return override
    raw = os.environ.get(OPTIMIZE_ENV, "").strip().lower()
    return raw not in {"0", "false", "no", "off"}


@dataclass(frozen=True, slots=True)
class RewriteStep:
    """One applied rewrite, for the trace / EXPLAIN output — and for
    the translation validator (:mod:`repro.analysis.validate`), which
    replays each step's soundness obligation from its payload.

    ``before`` is the redex (rebuilt over already-rewritten children),
    ``after`` its replacement; ``data`` carries rule-specific evidence
    (for ``fold-const``: the decided condition and the decision).  All
    three default empty so bare ``RewriteStep(rule, detail)`` values —
    and their rendering — are unchanged.
    """

    rule: str
    detail: str
    before: AlgebraExpr | None = None
    after: AlgebraExpr | None = None
    data: tuple[object, ...] = ()

    def __str__(self) -> str:
        return f"{self.rule}: {self.detail}"


@dataclass(frozen=True, slots=True)
class OptimizationResult:
    """Outcome of :func:`optimize_plan`."""

    plan: AlgebraExpr
    steps: tuple[RewriteStep, ...]
    #: Structurally repeated subplans the planner should compute once.
    shared: frozenset[AlgebraExpr]


# ---------------------------------------------------------------------------
# 1. Constant folding and empty propagation
# ---------------------------------------------------------------------------

def _is_empty(node: AlgebraExpr) -> bool:
    return isinstance(node, Lit) and not node.rows


def _empty(arity: int) -> Lit:
    return Lit(arity, frozenset())


def _fold_conds(conds: Iterable[Condition],
                steps: list[RewriteStep],
                ) -> tuple[frozenset[Condition], bool]:
    """Decide every const-vs-const condition.  Returns the remaining
    conditions and whether any condition is statically false."""
    remaining = []
    for cond in conds:
        if isinstance(cond.left, CConst) and isinstance(cond.right, CConst):
            if compare_values(cond.op, cond.left.value, cond.right.value):
                steps.append(RewriteStep(
                    "fold-const", f"dropped tautology {cond}",
                    data=(cond, True)))
            else:
                steps.append(RewriteStep(
                    "fold-const", f"{cond} is statically false",
                    data=(cond, False)))
                return frozenset(), True
        else:
            remaining.append(cond)
    return frozenset(remaining), False


def _fold_constants(expr: AlgebraExpr, catalog: Mapping[str, int],
                    steps: list[RewriteStep]) -> AlgebraExpr:
    def empty_step(what: str, before: AlgebraExpr,
                   after: AlgebraExpr) -> AlgebraExpr:
        steps.append(RewriteStep("fold-empty", what, before=before,
                                 after=after))
        return after

    def go(node: AlgebraExpr) -> AlgebraExpr:
        if isinstance(node, Select):
            child = go(node.child)
            conds, false = _fold_conds(node.conds, steps)
            if false or _is_empty(child):
                return empty_step("selection can never pass",
                                  Select(node.conds, child),
                                  _empty(arity_of(child, catalog)))
            if not conds:
                return child
            return Select(conds, child)
        if isinstance(node, Project):
            child = go(node.child)
            if _is_empty(child):
                return empty_step("projection over empty input",
                                  Project(node.exprs, child),
                                  _empty(len(node.exprs)))
            return Project(node.exprs, child)
        if isinstance(node, Join):
            left, right = go(node.left), go(node.right)
            conds, false = _fold_conds(node.conds, steps)
            width = arity_of(left, catalog) + arity_of(right, catalog)
            if false or _is_empty(left) or _is_empty(right):
                return empty_step(
                    "join can never produce a row",
                    Join(node.conds, left, right), _empty(width))
            if not conds:
                return Product(left, right)
            return Join(conds, left, right)
        if isinstance(node, Product):
            left, right = go(node.left), go(node.right)
            if _is_empty(left) or _is_empty(right):
                return empty_step(
                    "product with an empty input",
                    Product(left, right),
                    _empty(arity_of(left, catalog)
                           + arity_of(right, catalog)))
            return Product(left, right)
        if isinstance(node, Union):
            left, right = go(node.left), go(node.right)
            if _is_empty(left):
                return empty_step("union with an empty input",
                                  Union(left, right), right)
            if _is_empty(right):
                return empty_step("union with an empty input",
                                  Union(left, right), left)
            return Union(left, right)
        if isinstance(node, Diff):
            anti = match_anti_join(node)
            if anti is not None:
                conds0, context, excluded = anti
                new_context = go(context)
                new_excluded = go(excluded)
                redex = rebuild_anti_join(conds0, new_context, new_excluded,
                                          arity_of(new_context, catalog))
                if _is_empty(new_context):
                    return empty_step("anti-join over empty context",
                                      redex, new_context)
                conds, false = _fold_conds(conds0, steps)
                if false or _is_empty(new_excluded):
                    # nothing can ever match: the difference keeps all
                    return empty_step("anti-join excludes nothing",
                                      redex, new_context)
                return rebuild_anti_join(conds, new_context, new_excluded,
                                         arity_of(new_context, catalog))
            left, right = go(node.left), go(node.right)
            if _is_empty(left) or _is_empty(right):
                if _is_empty(right):
                    return empty_step("difference of nothing",
                                      Diff(left, right), left)
                return empty_step("difference over empty input",
                                  Diff(left, right), left)
            return Diff(left, right)
        if isinstance(node, Enumerate):
            child = go(node.child)
            if _is_empty(child):
                return empty_step(
                    "enumeration over empty input",
                    Enumerate(node.enumerator, node.inputs, node.out_count,
                              child),
                    _empty(arity_of(child, catalog) + node.out_count))
            return Enumerate(node.enumerator, node.inputs, node.out_count,
                             child)
        return node  # Rel, Lit, Params, AdomK

    return go(expr)


# ---------------------------------------------------------------------------
# 2. Selection / projection pushdown
# ---------------------------------------------------------------------------

def _prune_join_columns(exprs: Sequence[ColExpr], child: Join | Product,
                        catalog: Mapping[str, int],
                        steps: list[RewriteStep]) -> AlgebraExpr | None:
    """Dead-column elimination below ``Project(exprs, Join/Product)``.

    Columns referenced by neither the projection nor the join
    conditions are dropped from the children (sound under set
    semantics: rows agreeing on every *needed* column contribute the
    same output tuples, so deduplicating them early is harmless — and
    usually a win).
    """
    conds = child.conds if isinstance(child, Join) else frozenset()
    left_arity = arity_of(child.left, catalog)
    right_arity = arity_of(child.right, catalog)
    needed: set[int] = set()
    for e in exprs:
        needed |= colexpr_columns(e)
    for c in conds:
        needed |= c.columns()
    keep_left = [i for i in range(1, left_arity + 1) if i in needed]
    keep_right = [i for i in range(left_arity + 1,
                                   left_arity + right_arity + 1)
                  if i in needed]
    if len(keep_left) == left_arity and len(keep_right) == right_arity:
        return None
    mapping: dict[int, int] = {}
    for pos, col in enumerate(keep_left, start=1):
        mapping[col] = pos
    for pos, col in enumerate(keep_right, start=len(keep_left) + 1):
        mapping[col] = pos
    remap = mapping.__getitem__
    new_left = (child.left if len(keep_left) == left_arity
                else Project(tuple(Col(i) for i in keep_left), child.left))
    new_right = (child.right if len(keep_right) == right_arity
                 else Project(tuple(Col(i - left_arity) for i in keep_right),
                              child.right))
    new_conds = frozenset(
        Condition(_shift_colexpr(c.left, remap), c.op,
                  _shift_colexpr(c.right, remap))
        for c in conds
    )
    dropped = left_arity + right_arity - len(keep_left) - len(keep_right)
    new_child = (Join(new_conds, new_left, new_right)
                 if isinstance(child, Join)
                 else Product(new_left, new_right))
    result = Project(tuple(_shift_colexpr(e, remap) for e in exprs),
                     new_child)
    steps.append(RewriteStep(
        "pushdown-project",
        f"pruned {dropped} dead column(s) below "
        f"{'join' if isinstance(child, Join) else 'product'}",
        before=Project(tuple(exprs), child), after=result))
    return result


def _pushdown(expr: AlgebraExpr, catalog: Mapping[str, int],
              steps: list[RewriteStep]) -> AlgebraExpr:
    def go(node: AlgebraExpr) -> AlgebraExpr:
        if isinstance(node, Select):
            child = go(node.child)
            redex = Select(node.conds, child)
            if isinstance(child, Union):
                result = Union(Select(node.conds, child.left),
                               Select(node.conds, child.right))
                steps.append(RewriteStep(
                    "pushdown-select", "selection through union",
                    before=redex, after=result))
                return result
            if isinstance(child, Diff):
                anti = match_anti_join(child)
                if anti is not None:
                    conds, context, excluded = anti
                    result = rebuild_anti_join(
                        conds, Select(node.conds, context), excluded,
                        arity_of(context, catalog))
                    steps.append(RewriteStep(
                        "pushdown-select", "selection into anti-join input",
                        before=redex, after=result))
                    return result
                result = Diff(Select(node.conds, child.left), child.right)
                steps.append(RewriteStep(
                    "pushdown-select", "selection into difference input",
                    before=redex, after=result))
                return result
            if isinstance(child, Enumerate):
                inner_arity = arity_of(child.child, catalog)
                inside = frozenset(
                    c for c in node.conds
                    if all(i <= inner_arity for i in c.columns()))
                if inside:
                    outside = node.conds - inside
                    pushed = Enumerate(child.enumerator, child.inputs,
                                       child.out_count,
                                       Select(inside, child.child))
                    result = Select(outside, pushed) if outside else pushed
                    steps.append(RewriteStep(
                        "pushdown-select",
                        f"{len(inside)} condition(s) below enumerate",
                        before=redex, after=result))
                    return result
            return redex
        if isinstance(node, Join):
            left, right = go(node.left), go(node.right)
            left_arity = arity_of(left, catalog)
            push_left, push_right, keep = [], [], []
            for c in node.conds:
                cols = c.columns()
                if all(i <= left_arity for i in cols):
                    push_left.append(c)
                elif all(i > left_arity for i in cols):
                    shifted = (lambda i, off=left_arity: i - off)
                    push_right.append(Condition(
                        _shift_colexpr(c.left, shifted), c.op,
                        _shift_colexpr(c.right, shifted)))
                else:
                    keep.append(c)
            if not push_left and not push_right:
                return Join(node.conds, left, right)
            redex = Join(node.conds, left, right)
            if push_left:
                left = Select(frozenset(push_left), left)
            if push_right:
                right = Select(frozenset(push_right), right)
            result = (Join(frozenset(keep), left, right) if keep
                      else Product(left, right))
            steps.append(RewriteStep(
                "pushdown-select",
                f"{len(push_left) + len(push_right)} condition(s) "
                "below join", before=redex, after=result))
            return result
        if isinstance(node, Project):
            child = go(node.child)
            if isinstance(child, Union):
                result = Union(Project(node.exprs, child.left),
                               Project(node.exprs, child.right))
                steps.append(RewriteStep(
                    "pushdown-project", "projection through union",
                    before=Project(node.exprs, child), after=result))
                return result
            if isinstance(child, (Join, Product)):
                pruned = _prune_join_columns(node.exprs, child, catalog,
                                             steps)
                if pruned is not None:
                    return pruned
            return Project(node.exprs, child)
        if isinstance(node, Enumerate):
            return Enumerate(node.enumerator, node.inputs, node.out_count,
                             go(node.child))
        if isinstance(node, Union):
            return Union(go(node.left), go(node.right))
        if isinstance(node, Diff):
            anti = match_anti_join(node)
            if anti is not None:
                conds, context, excluded = anti
                new_context = go(context)
                return rebuild_anti_join(conds, new_context, go(excluded),
                                         arity_of(new_context, catalog))
            return Diff(go(node.left), go(node.right))
        if isinstance(node, Product):
            return Product(go(node.left), go(node.right))
        return node

    return go(expr)


# ---------------------------------------------------------------------------
# 3. Greedy join reordering
# ---------------------------------------------------------------------------

def _region_projection(n: AlgebraExpr) -> bool:
    """A pure column shuffle sitting on a join: transparent to the
    region flattener.  (Translated plans interleave joins with
    column-pruning projections; under set semantics the kept columns
    determine the final answer, so the shuffle can be deferred to the
    region's restoring projection.)"""
    return (isinstance(n, Project)
            and all(isinstance(e, Col) for e in n.exprs)
            and isinstance(n.child, (Join, Product, Project)))


def _flatten_region(
        node: AlgebraExpr, catalog: Mapping[str, int],
) -> tuple[list[AlgebraExpr], list[Condition], tuple[int, ...]]:
    """Flatten a maximal Join/Product region into its non-join leaves,
    all conditions in region coordinates (the concatenation of the
    leaves' columns), and the region's output columns as a tuple of
    region coordinates.  Pure-``Col`` projections between joins are
    flattened through — they only relabel coordinates."""
    leaves: list[AlgebraExpr] = []
    conds: list[Condition] = []
    next_col = 0

    def walk(n: AlgebraExpr) -> tuple[int, ...]:
        nonlocal next_col
        if isinstance(n, (Join, Product)):
            out = walk(n.left) + walk(n.right)
            if isinstance(n, Join):
                get = (lambda i, cols=out: cols[i - 1])
                for c in n.conds:
                    conds.append(Condition(_shift_colexpr(c.left, get),
                                           c.op,
                                           _shift_colexpr(c.right, get)))
            return out
        if _region_projection(n):
            out = walk(n.child)
            return tuple(out[e.index - 1] for e in n.exprs)
        leaves.append(n)
        width = arity_of(n, catalog)
        out = tuple(range(next_col + 1, next_col + width + 1))
        next_col += width
        return out

    outcols = walk(node)
    return leaves, conds, outcols


def _rebuild_region(node: AlgebraExpr,
                    leaf_iter: Iterator[AlgebraExpr]) -> AlgebraExpr:
    """Rebuild the original region shape around rewritten leaves
    (mirrors :func:`_flatten_region`'s traversal order)."""
    if isinstance(node, (Join, Product)):
        left = _rebuild_region(node.left, leaf_iter)
        right = _rebuild_region(node.right, leaf_iter)
        if isinstance(node, Join):
            return Join(node.conds, left, right)
        return Product(left, right)
    if _region_projection(node):
        return Project(node.exprs, _rebuild_region(node.child, leaf_iter))
    return next(leaf_iter)


def _greedy_join_order(leaves: Sequence[AlgebraExpr],
                       conds: Sequence[Condition],
                       outcols: Sequence[int], stats: InstanceStats,
                       catalog: Mapping[str, int],
                       steps: list[RewriteStep],
                       region_before: AlgebraExpr | None = None,
                       ) -> AlgebraExpr:
    """Left-deep greedy order: start from the estimated-smallest leaf,
    extend with the estimated-cheapest join, preferring connected
    extensions; every condition attaches at the earliest join where all
    of its columns are available.  Returns the rebuilt region wrapped
    in a projection restoring the region's original output columns."""
    arities = [arity_of(leaf, catalog) for leaf in leaves]
    starts: list[int] = []
    offset = 0
    for a in arities:
        starts.append(offset)
        offset += a

    def leaf_of(col: int) -> int:
        for idx in range(len(leaves)):
            if starts[idx] < col <= starts[idx] + arities[idx]:
                return idx
        raise AssertionError(f"column @{col} outside join region")

    cond_leaves = [frozenset(leaf_of(i) for i in c.columns()) for c in conds]
    estimates = [estimate_cardinality(leaf, stats) for leaf in leaves]

    start = min(range(len(leaves)), key=lambda i: (estimates[i], i))
    col_map: dict[int, int] = {
        starts[start] + j: j for j in range(1, arities[start] + 1)
    }
    current = leaves[start]
    current_arity = arities[start]
    placed = {start}
    order = [start]
    applied = [False] * len(conds)

    def remap_cond(cond: Condition, mapping: dict[int, int]) -> Condition:
        get = mapping.__getitem__
        return Condition(_shift_colexpr(cond.left, get), cond.op,
                         _shift_colexpr(cond.right, get))

    ready = frozenset(remap_cond(conds[k], col_map)
                      for k in range(len(conds))
                      if not applied[k] and cond_leaves[k] <= placed)
    for k in range(len(conds)):
        if cond_leaves[k] <= placed:
            applied[k] = True
    if ready:
        current = Select(ready, current)

    while len(placed) < len(leaves):
        best = None
        for cand in range(len(leaves)):
            if cand in placed:
                continue
            usable = [k for k in range(len(conds))
                      if not applied[k]
                      and cond_leaves[k] <= placed | {cand}]
            trial_map = dict(col_map)
            for j in range(1, arities[cand] + 1):
                trial_map[starts[cand] + j] = current_arity + j
            mapped = frozenset(remap_cond(conds[k], trial_map)
                               for k in usable)
            trial = (Join(mapped, current, leaves[cand]) if mapped
                     else Product(current, leaves[cand]))
            score = estimate_cardinality(trial, stats)
            key = (not usable, score, cand)
            if best is None or key < best[0]:
                best = (key, cand, usable, trial, trial_map)
        _, cand, usable, current, col_map = best
        current_arity += arities[cand]
        placed.add(cand)
        order.append(cand)
        for k in usable:
            applied[k] = True

    restore = tuple(Col(col_map[g]) for g in outcols)
    result = Project(restore, current)
    if order != sorted(order):
        steps.append(RewriteStep(
            "join-reorder",
            f"{len(leaves)}-way region evaluated in leaf order "
            f"{order} (estimated rows: "
            f"{', '.join(f'{e:.0f}' for e in estimates)})",
            before=region_before, after=result))
    return result


def _reorder_joins(expr: AlgebraExpr, stats: InstanceStats,
                   catalog: Mapping[str, int], steps: list) -> AlgebraExpr:
    def go(node: AlgebraExpr) -> AlgebraExpr:
        if isinstance(node, (Join, Product)):
            leaves, conds, outcols = _flatten_region(node, catalog)
            new_leaves = [go(leaf) for leaf in leaves]
            if len(new_leaves) >= 3:
                region_before = _rebuild_region(node, iter(new_leaves))
                return _greedy_join_order(new_leaves, conds, outcols, stats,
                                          catalog, steps, region_before)
            return _rebuild_region(node, iter(new_leaves))
        if isinstance(node, Project):
            return Project(node.exprs, go(node.child))
        if isinstance(node, Select):
            return Select(node.conds, go(node.child))
        if isinstance(node, Enumerate):
            return Enumerate(node.enumerator, node.inputs, node.out_count,
                             go(node.child))
        if isinstance(node, Union):
            return Union(go(node.left), go(node.right))
        if isinstance(node, Diff):
            anti = match_anti_join(node)
            if anti is not None:
                conds, context, excluded = anti
                new_context = go(context)
                return rebuild_anti_join(conds, new_context, go(excluded),
                                         arity_of(new_context, catalog))
            return Diff(go(node.left), go(node.right))
        return node

    return go(expr)


# ---------------------------------------------------------------------------
# 4. Common-subexpression detection
# ---------------------------------------------------------------------------

def _cse_eligible(node: AlgebraExpr) -> bool:
    """Worth materializing when repeated: anything that does work.
    Scans (Rel/Lit/Params) are excluded — re-reading them is as cheap
    as re-reading a materialization."""
    return isinstance(node, (AdomK, Project, Select, Join, Union, Diff,
                             Product, Enumerate))


def shared_subplans(plan: AlgebraExpr) -> frozenset[AlgebraExpr]:
    """Structurally repeated subplans worth computing once.

    Occurrences *inside* an already-repeated subplan are not counted
    again (the whole subplan is shared, so its parts come for free),
    and the two structurally equal context occurrences of an anti-join
    pattern count as one — the planner builds that operator once.
    """
    counts: Counter = Counter()

    def visit(node: AlgebraExpr) -> None:
        if _cse_eligible(node):
            counts[node] += 1
            if counts[node] > 1:
                return
        if isinstance(node, Diff):
            anti = match_anti_join(node)
            if anti is not None:
                _conds, context, excluded = anti
                visit(context)
                visit(excluded)
                return
        if isinstance(node, (Project, Select, Enumerate)):
            visit(node.child)
        elif isinstance(node, (Join, Union, Diff, Product)):
            visit(node.left)
            visit(node.right)

    visit(plan)
    return frozenset(node for node, n in counts.items() if n >= 2)


# ---------------------------------------------------------------------------
# Driver
# ---------------------------------------------------------------------------

def optimize_plan(expr: AlgebraExpr, stats: InstanceStats,
                  catalog: Mapping[str, int],
                  verify: bool | None = None,
                  schema: DatabaseSchema | None = None) -> OptimizationResult:
    """Run the full rewrite pipeline over ``expr``.

    Order: constant folding, then pushdown alternated with the
    algebraic simplifier to a fixed point, then join reordering, then
    build-side selection, then shared-subplan detection.  The result
    evaluates to exactly the same relation as the input (property-
    tested against both the unoptimized plan and the reference
    calculus evaluator, and — under ``verify``, which defers to the
    same module-wide default as the plan sanitizer — *certified* per
    run by the translation validator,
    :mod:`repro.analysis.validate`: every recorded step's obligation
    is replayed and :class:`~repro.errors.RewriteValidationError`
    raised on any violation).  ``schema``, when given, feeds declared
    column types and function signatures to the validator's
    column-fact refinement check.

    If the pipeline itself fails with an
    :class:`~repro.errors.EvaluationError` (an un-typable plan), the
    steps recorded up to that point are attached to the exception as
    ``rewrite_steps`` so callers falling back to the unoptimized plan
    can report what was attempted.
    """
    steps: list[RewriteStep] = []
    try:
        plan = _fold_constants(expr, catalog, steps)
        plan = simplify(plan, catalog)
        # Reorder before pushdown: the simplifier has merged selections
        # into the join nodes, so Join/Product regions are maximal here —
        # column pruning below would interpose projections and split them.
        plan = simplify(_reorder_joins(plan, stats, catalog, steps), catalog)
        for _ in range(MAX_PUSHDOWN_ROUNDS):
            round_steps: list[RewriteStep] = []
            candidate = simplify(_pushdown(plan, catalog, round_steps),
                                 catalog)
            if candidate == plan:
                break
            plan = candidate
            steps.extend(round_steps)
        swaps: list[tuple] = []
        plan = choose_build_sides(plan, stats, catalog, swaps)
        steps.extend(RewriteStep("build-side", detail, before=b, after=a)
                     for detail, b, a in swaps)
        shared = shared_subplans(plan)
        if shared:
            steps.append(RewriteStep(
                "cse", f"{len(shared)} repeated subplan(s) computed once"))
    except EvaluationError as err:
        err.rewrite_steps = tuple(steps)
        raise
    if verify_plans_enabled(verify):
        check_plan(plan, catalog, phase="optimize",
                   expected_arity=arity_of(expr, catalog))
        check_rewrites(expr, plan, steps, shared, catalog, schema=schema,
                       phase="optimize")
    return OptimizationResult(plan, tuple(steps), shared)
