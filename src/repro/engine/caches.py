"""Cross-query engine caches: instance statistics and term closures.

Two computations recur across requests against the same data and are
pure functions of immutable inputs, so they are cached process-wide:

* :func:`stats_for` — ``collect_stats`` results, keyed by the
  instance's content :meth:`~repro.data.instance.Instance.fingerprint`.
  The cost-based rewrite pass consults statistics on *every* optimized
  execution; one scan per distinct instance instead of one per request.
* :func:`closure_for` — ``term_closure`` materializations for ``AdomK``
  nodes, keyed by (instance fingerprint, closure level, extra
  constants).  The closure is the single most expensive planning-time
  computation (worst case ``|base| ** (max_arity ** k)``) and the
  [AB88]-style baseline translation emits the *same* ``AdomK`` node
  many times per plan, so this cache pays off even within one request.

Both caches are content-addressed, so a *different* instance can never
be served a stale entry — new content hashes to a new key and old
entries age out of the bounded LRU.  The closure additionally depends
on the interpretation and the schema's function signatures, which have
no content hash; entries therefore pin those objects and are verified
**by identity** on every hit (``entry.interp is interpretation``).  A
logically equal but distinct interpretation misses and recomputes —
correct, merely not maximally shared.

:func:`clear_engine_caches` drops everything; the service layer calls
it alongside :func:`repro.safety.clear_caches` whenever the
compilation environment (schema, annotations) is swapped.
"""

from __future__ import annotations

from collections import OrderedDict
from dataclasses import dataclass
from threading import Lock
from typing import Hashable, Iterable

from repro.core.schema import DatabaseSchema
from repro.data.domain import term_closure
from repro.data.instance import Instance
from repro.data.interpretation import Interpretation
from repro.engine.stats import InstanceStats, collect_stats

__all__ = ["stats_for", "closure_for", "clear_engine_caches",
           "engine_cache_info"]

#: Maximum distinct instances whose statistics are retained.
STATS_CACHE_SIZE = 64
#: Maximum retained term-closure materializations.
CLOSURE_CACHE_SIZE = 64

_lock = Lock()
_stats_cache: OrderedDict = OrderedDict()
_closure_cache: OrderedDict = OrderedDict()
_hits = {"stats": 0, "closure": 0}
_misses = {"stats": 0, "closure": 0}


@dataclass(slots=True)
class _ClosureEntry:
    instance: Instance
    interp: Interpretation
    functions: tuple
    closure: frozenset


def stats_for(instance: Instance) -> InstanceStats:
    """``collect_stats(instance)``, cached by content fingerprint."""
    key = instance.fingerprint()
    with _lock:
        cached = _stats_cache.get(key)
        if cached is not None and cached[0] == instance:
            _stats_cache.move_to_end(key)
            _hits["stats"] += 1
            return cached[1]
    stats = collect_stats(instance)
    with _lock:
        _misses["stats"] += 1
        _stats_cache[key] = (instance, stats)
        _stats_cache.move_to_end(key)
        while len(_stats_cache) > STATS_CACHE_SIZE:
            _stats_cache.popitem(last=False)
    return stats


def closure_for(instance: Instance, level: int, extras: Iterable[Hashable],
                interpretation: Interpretation,
                schema: DatabaseSchema) -> frozenset:
    """``term_closure(adom(I) | extras, level)``, cached across queries.

    The key is (instance fingerprint, level, extras); hits are verified
    against the instance by equality and against the interpretation by
    identity (interpretations hold arbitrary callables and have no
    content hash), plus the schema's function signatures by value.
    """
    extras = frozenset(extras)
    functions = tuple(sorted((sig.name, sig.arity)
                             for sig in schema.functions))
    key = (instance.fingerprint(), level, extras)
    with _lock:
        entry = _closure_cache.get(key)
        if (entry is not None and entry.instance == instance
                and entry.interp is interpretation
                and entry.functions == functions):
            _closure_cache.move_to_end(key)
            _hits["closure"] += 1
            return entry.closure
    base = set(instance.active_domain()) | set(extras)
    closure = term_closure(base, level, interpretation, schema)
    with _lock:
        _misses["closure"] += 1
        _closure_cache[key] = _ClosureEntry(instance, interpretation,
                                            functions, closure)
        _closure_cache.move_to_end(key)
        while len(_closure_cache) > CLOSURE_CACHE_SIZE:
            _closure_cache.popitem(last=False)
    return closure


def clear_engine_caches() -> None:
    """Drop all cached statistics and closures (idempotent).

    Hit/miss counters are reset too, so :func:`engine_cache_info`
    reflects only activity since the last clear.  The columnar scan
    cache (relations converted to column layout) is dropped alongside.
    """
    from repro.engine.batches import clear_columnar_cache
    with _lock:
        _stats_cache.clear()
        _closure_cache.clear()
        for counter in (_hits, _misses):
            for name in counter:
                counter[name] = 0
    clear_columnar_cache()


def engine_cache_info() -> dict:
    """Hit/miss/size counters for both caches, JSON-ready."""
    with _lock:
        return {
            "stats": {"entries": len(_stats_cache),
                      "hits": _hits["stats"], "misses": _misses["stats"]},
            "closure": {"entries": len(_closure_cache),
                        "hits": _hits["closure"],
                        "misses": _misses["closure"]},
        }
