"""One-time compilation of column expressions into per-row closures.

The batch engine (:mod:`repro.engine.operators`) evaluates predicates
and projections over whole batches at a time.  Paying the interpretive
cost of :func:`repro.algebra.evaluator.eval_colexpr` — an
``isinstance`` dispatch per AST node per row — inside those loops would
forfeit most of the batching win, so each operator compiles its column
expressions **once** at plan-build time into plain closures and then
maps them over every batch.

The compiled closures preserve the evaluator's semantics exactly:

* column references raise :class:`~repro.errors.EvaluationError` when
  out of range (the ``try/except IndexError`` costs nothing on the
  success path);
* function applications go through the interpretation's **counting
  wrapper** (hoisted once per compiled node, so per-call counting still
  works) and propagate :data:`~repro.data.interpretation.UNDEFINED`
  without calling the host function;
* conditions decide through :func:`repro.algebra.ast.compare_values`,
  the single comparison semantics shared by every evaluator.
"""

from __future__ import annotations

from itertools import repeat
from operator import itemgetter
from typing import Any, Callable, Hashable

from repro.algebra.ast import CApp, CConst, Col, ColExpr, Condition, compare_values
from repro.data.interpretation import Interpretation, UNDEFINED
from repro.engine.batches import (
    Column,
    ColumnBatch,
    ColumnarFallback,
    Const,
    column_from_values,
    compare_columns,
    const_column,
)
from repro.errors import EvaluationError

__all__ = [
    "compile_colexpr",
    "compile_predicate",
    "compile_projection",
    "compile_colexpr_columnar",
    "compile_predicate_columnar",
    "compile_projection_columnar",
    "may_be_undefined",
]

#: A compiled column expression: row -> value.
RowFn = Callable[[tuple], Hashable]


def may_be_undefined(expr: ColExpr) -> bool:
    """True iff evaluating ``expr`` can produce :data:`UNDEFINED`.

    Only a function application can be undefined; rows flowing between
    operators never contain UNDEFINED (every producer drops them), so a
    pure column/constant expression is total and its consumers may skip
    the per-row UNDEFINED scan entirely.
    """
    if isinstance(expr, CApp):
        return True
    if isinstance(expr, (Col, CConst)):
        return False
    raise TypeError(f"not a column expression: {expr!r}")


def compile_colexpr(expr: ColExpr, interpretation: Interpretation) -> RowFn:
    """Compile one column expression into a ``row -> value`` closure."""
    if isinstance(expr, Col):
        index = expr.index - 1

        def col(row: tuple) -> Hashable:
            try:
                return row[index]
            except IndexError:
                raise EvaluationError(
                    f"column @{index + 1} out of range for row of width "
                    f"{len(row)}") from None

        return col
    if isinstance(expr, CConst):
        value = expr.value
        return lambda row: value
    if isinstance(expr, CApp):
        fn = interpretation[expr.name]   # counting wrapper, hoisted once
        arg_fns = tuple(compile_colexpr(a, interpretation) for a in expr.args)
        if len(arg_fns) == 1:
            arg0 = arg_fns[0]

            def apply1(row: tuple) -> Hashable:
                value = arg0(row)
                if value is UNDEFINED:
                    return UNDEFINED
                return fn(value)

            return apply1

        def apply_n(row: tuple) -> Hashable:
            args = [f(row) for f in arg_fns]
            if any(a is UNDEFINED for a in args):
                return UNDEFINED
            return fn(*args)

        return apply_n
    raise TypeError(f"not a column expression: {expr!r}")


def compile_predicate(conds: frozenset[Condition],
                      interpretation: Interpretation
                      ) -> Callable[[tuple], bool] | None:
    """Compile a conjunction of conditions into one ``row -> bool``
    closure, or ``None`` for the empty (always-true) conjunction."""
    compiled = tuple(
        (compile_colexpr(c.left, interpretation), c.op,
         compile_colexpr(c.right, interpretation))
        for c in sorted(conds, key=str)
    )
    if not compiled:
        return None
    if len(compiled) == 1:
        left, op, right = compiled[0]
        return lambda row: compare_values(op, left(row), right(row))

    def passes(row: tuple) -> bool:
        for left, op, right in compiled:
            if not compare_values(op, left(row), right(row)):
                return False
        return True

    return passes


def compile_projection(exprs: tuple[ColExpr, ...],
                       interpretation: Interpretation
                       ) -> Callable[[tuple], tuple]:
    """Compile an extended projection into one ``row -> tuple`` closure.

    The caller remains responsible for dropping output tuples containing
    :data:`UNDEFINED` (set semantics: no domain value equals an
    undefined application).

    The common all-column case (no function applications, no constants)
    compiles down to :func:`operator.itemgetter` — one C-level call per
    row instead of one Python closure per column per row.  This is the
    hot path for plans that project attributes off a wide join."""
    if exprs and all(isinstance(e, Col) for e in exprs):
        indices = tuple(e.index - 1 for e in exprs)
        if len(indices) == 1:
            index = indices[0]

            def project_one(row: tuple) -> tuple:
                try:
                    return (row[index],)
                except IndexError:
                    raise EvaluationError(
                        f"column @{index + 1} out of range for row of "
                        f"width {len(row)}") from None

            return project_one
        get = itemgetter(*indices)

        def project_cols(row: tuple) -> tuple:
            try:
                return get(row)
            except IndexError:
                raise EvaluationError(
                    f"column out of range for row of width {len(row)}"
                ) from None

        return project_cols
    fns = tuple(compile_colexpr(e, interpretation) for e in exprs)
    if len(fns) == 1:
        fn0 = fns[0]
        return lambda row: (fn0(row),)
    return lambda row: tuple(fn(row) for fn in fns)


# ---------------------------------------------------------------------------
# Columnar compilation
# ---------------------------------------------------------------------------
#
# The columnar counterparts compile the same expression trees into
# ``batch -> Column`` closures over :class:`ColumnBatch`.  Column
# references are zero-copy (the batch's own array), constants stay
# scalar (:class:`Const`) so comparisons take the array-vs-scalar fast
# path, and function applications call the host function per *defined*
# element with UNDEFINED tracked in the column mask rather than rebuilt
# row tuples.  A kernel that meets values it cannot represent raises
# :class:`ColumnarFallback` at runtime; the operator then reruns that
# one batch through the row closures above, so compilation itself never
# fails.

#: A compiled columnar expression: batch -> Column | Const.
BatchFn = Callable[[ColumnBatch], "Column | Const"]


def compile_colexpr_columnar(expr: ColExpr,
                             interpretation: Interpretation) -> BatchFn:
    """Compile one column expression into a ``batch -> column`` kernel."""
    if isinstance(expr, Col):
        index = expr.index - 1

        def col(batch: ColumnBatch) -> Column:
            try:
                return batch.columns[index]
            except IndexError:
                raise EvaluationError(
                    f"column @{index + 1} out of range for row of width "
                    f"{batch.arity}") from None

        return col
    if isinstance(expr, CConst):
        constant = Const(expr.value)
        return lambda batch: constant
    if isinstance(expr, CApp):
        fn = interpretation[expr.name]   # counting wrapper, hoisted once
        arg_fns = tuple(
            compile_colexpr_columnar(a, interpretation) for a in expr.args)

        def apply(batch: ColumnBatch) -> Column:
            n = len(batch)
            streams = []
            for arg_fn in arg_fns:
                arg = arg_fn(batch)
                if isinstance(arg, Const):
                    streams.append(repeat(arg.value, n))
                else:
                    streams.append(arg.pylist())
            values: list[Any] = []
            mask: list[bool] = []
            add_value = values.append
            add_mask = mask.append
            if len(streams) == 1:
                for v in streams[0]:
                    if v is UNDEFINED:
                        result: Any = UNDEFINED
                    else:
                        result = fn(v)
                    if result is UNDEFINED:
                        add_value(None)
                        add_mask(True)
                    else:
                        add_value(result)
                        add_mask(False)
            else:
                for args in zip(*streams):
                    if any(a is UNDEFINED for a in args):
                        result = UNDEFINED
                    else:
                        result = fn(*args)
                    if result is UNDEFINED:
                        add_value(None)
                        add_mask(True)
                    else:
                        add_value(result)
                        add_mask(False)
            column = column_from_values(values, mask)
            if column is None:
                raise ColumnarFallback(
                    f"result of {expr.name} is not array-representable")
            return column

        return apply
    raise TypeError(f"not a column expression: {expr!r}")


def compile_predicate_columnar(conds: frozenset[Condition],
                               interpretation: Interpretation
                               ) -> Callable[[ColumnBatch], Any] | None:
    """Compile a conjunction into one ``batch -> bool-mask`` kernel, or
    ``None`` for the empty (always-true) conjunction.

    Unlike the row closure, the mask kernel evaluates **every**
    condition over **every** row — there is no short-circuit AND — so
    ``function_calls`` may exceed the tuple path's on batches where an
    earlier condition already failed.  Answers are unaffected (the
    masks are ANDed), and comparison counting for joins is handled by
    the operators, not here.
    """
    compiled = tuple(
        (compile_colexpr_columnar(c.left, interpretation), c.op,
         compile_colexpr_columnar(c.right, interpretation))
        for c in sorted(conds, key=str)
    )
    if not compiled:
        return None

    def mask_of(batch: ColumnBatch) -> Any:
        n = len(batch)
        out = None
        for left, op, right in compiled:
            mask = compare_columns(op, left(batch), right(batch), n)
            out = mask if out is None else out & mask
        return out

    return mask_of


def compile_projection_columnar(exprs: tuple[ColExpr, ...],
                                interpretation: Interpretation
                                ) -> Callable[[ColumnBatch], ColumnBatch]:
    """Compile an extended projection into one ``batch -> batch``
    kernel.

    Pure column references are zero-copy; function applications return
    masked columns.  The caller drops rows whose combined mask is set
    (set semantics: no domain value equals an undefined application).
    """
    fns = tuple(compile_colexpr_columnar(e, interpretation) for e in exprs)

    def project(batch: ColumnBatch) -> ColumnBatch:
        n = len(batch)
        columns = []
        for fn in fns:
            column = fn(batch)
            if isinstance(column, Const):
                column = const_column(column.value, n)
            columns.append(column)
        return ColumnBatch(tuple(columns), n)

    return project
