"""Physical execution engine: operators, planner, executor, optimizer.

The engine exists for the performance experiments (E6/E9): the paper's
argument that [GT91]-style plans beat active-domain plans is a claim
about execution, and these operators make it measurable.
Correctness is anchored to :func:`repro.algebra.evaluate` — the engine
must return identical relations on every plan (tested).

Between translation and planning sits the cost-based logical rewrite
pass (:mod:`repro.engine.rewrite`; on by default, ``REPRO_OPTIMIZE=0``
disables), fed by cached per-instance statistics and term closures
(:mod:`repro.engine.caches`).

The batch representation operators exchange is pluggable
(:mod:`repro.engine.batches`): plain tuple lists (default) or
NumPy-backed column batches with vectorized per-operator kernels
(``batch_repr="column"`` / ``REPRO_BATCH_REPR``), falling back to
tuple batches with a coded diagnostic when NumPy is unavailable.
"""

from repro.engine.batches import (
    BATCH_REPRS,
    COLUMNAR_UNAVAILABLE,
    DEFAULT_BATCH_REPR,
    ColumnBatch,
    columnar_available,
    columnar_unavailable_reason,
    default_batch_repr,
    resolve_batch_repr,
)
from repro.engine.caches import (
    clear_engine_caches,
    closure_for,
    engine_cache_info,
    stats_for,
)
from repro.engine.executor import RunReport, execute, plan_catalog
from repro.engine.operators import (
    DEFAULT_BATCH_SIZE,
    OpCounters,
    ProfiledOp,
    default_batch_size,
)
from repro.engine.optimizer import choose_build_sides, match_anti_join
from repro.engine.planner import build_physical_plan
from repro.engine.rewrite import (
    OptimizationResult,
    RewriteStep,
    optimize_enabled,
    optimize_plan,
    shared_subplans,
)
from repro.engine.stats import (
    ENUMERATE_FANOUT,
    InstanceStats,
    TableStats,
    collect_stats,
    estimate_cardinality,
)

__all__ = [
    "execute", "RunReport", "OpCounters", "ProfiledOp",
    "DEFAULT_BATCH_SIZE", "default_batch_size",
    "BATCH_REPRS", "DEFAULT_BATCH_REPR", "COLUMNAR_UNAVAILABLE",
    "ColumnBatch", "columnar_available", "columnar_unavailable_reason",
    "default_batch_repr", "resolve_batch_repr",
    "build_physical_plan", "plan_catalog",
    "collect_stats", "TableStats", "InstanceStats",
    "estimate_cardinality", "choose_build_sides", "ENUMERATE_FANOUT",
    "match_anti_join",
    "optimize_plan", "optimize_enabled", "OptimizationResult",
    "RewriteStep", "shared_subplans",
    "stats_for", "closure_for", "clear_engine_caches", "engine_cache_info",
]
