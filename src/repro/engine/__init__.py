"""Physical execution engine: operators, planner, executor.

The engine exists for the performance experiments (E6/E9): the paper's
argument that [GT91]-style plans beat active-domain plans is a claim
about execution, and these operators make it measurable.
Correctness is anchored to :func:`repro.algebra.evaluate` — the engine
must return identical relations on every plan (tested).
"""

from repro.engine.executor import RunReport, execute
from repro.engine.operators import (
    DEFAULT_BATCH_SIZE,
    OpCounters,
    ProfiledOp,
    default_batch_size,
)
from repro.engine.optimizer import choose_build_sides
from repro.engine.planner import build_physical_plan
from repro.engine.stats import (
    ENUMERATE_FANOUT,
    InstanceStats,
    TableStats,
    collect_stats,
    estimate_cardinality,
)

__all__ = [
    "execute", "RunReport", "OpCounters", "ProfiledOp",
    "DEFAULT_BATCH_SIZE", "default_batch_size",
    "build_physical_plan",
    "collect_stats", "TableStats", "InstanceStats",
    "estimate_cardinality", "choose_build_sides", "ENUMERATE_FANOUT",
]
