"""The extended relational algebra (coordinate positions, after
Heraclitus [GHJ92, GHJ93]).

Relations are sets of positional tuples; coordinates are written ``@1``,
``@2``, ... in the paper and printed the same way here.  The extension
over the classical algebra is the **extended projection**: projection
expressions are *terms over coordinates*, so scalar functions are
applied point-wise — ``project([@1, f(@1)], R)`` pairs every value of R
with its image under ``f`` (the apply-append of the OOAlgebra [Day89]).

Column expressions (:class:`ColExpr`) are a separate small term
language over coordinates::

    Col(1)                    @1
    CConst(42)                42
    CApp("f", (Col(1),))      f(@1)

Algebra nodes:

=================================  ==========================================
``Rel(name)``                      database relation
``Lit(arity, rows)``               literal (constant) relation
``Project(exprs, child)``          extended projection
``Select(conds, child)``           selection by a set of conditions
``Join(conds, left, right)``       conditions over the concatenated columns
``Union / Diff / Product``         set operations
``AdomK(level, extras)``           unary active-domain relation closed under
                                   ``level`` rounds of function application —
                                   used only by the [AB88] baseline translation
=================================  ==========================================
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Hashable, Iterator, Mapping

from repro.errors import EvaluationError

__all__ = [
    "ColExpr",
    "Col",
    "CConst",
    "CApp",
    "Condition",
    "compare_values",
    "AlgebraExpr",
    "Rel",
    "Lit",
    "Project",
    "Select",
    "Join",
    "Union",
    "Diff",
    "Product",
    "AdomK",
    "Params",
    "Enumerate",
    "arity_of",
    "walk_algebra",
    "colexpr_columns",
    "algebra_size",
    "algebra_function_names",
]


# ---------------------------------------------------------------------------
# Column expressions
# ---------------------------------------------------------------------------

class ColExpr:
    """Abstract base of column expressions (terms over coordinates)."""

    __slots__ = ()


@dataclass(frozen=True, slots=True)
class Col(ColExpr):
    """A coordinate reference ``@index`` (1-based, as in the paper)."""

    index: int

    def __post_init__(self) -> None:
        if self.index < 1:
            raise EvaluationError(f"coordinates are 1-based, got @{self.index}")

    def __str__(self) -> str:
        return f"@{self.index}"


@dataclass(frozen=True, slots=True)
class CConst(ColExpr):
    """A constant column expression."""

    value: Hashable

    def __str__(self) -> str:
        if isinstance(self.value, str):
            return f"'{self.value}'"
        return str(self.value)


@dataclass(frozen=True, slots=True)
class CApp(ColExpr):
    """A scalar function applied to column expressions: ``f(@1, @2)``."""

    name: str
    args: tuple[ColExpr, ...]

    def __post_init__(self) -> None:
        if not isinstance(self.args, tuple):
            object.__setattr__(self, "args", tuple(self.args))

    def __str__(self) -> str:
        return f"{self.name}({', '.join(str(a) for a in self.args)})"


def colexpr_columns(expr: ColExpr) -> frozenset[int]:
    """All coordinate indexes referenced by ``expr``."""
    if isinstance(expr, Col):
        return frozenset({expr.index})
    if isinstance(expr, CConst):
        return frozenset()
    if isinstance(expr, CApp):
        out: set[int] = set()
        for a in expr.args:
            out |= colexpr_columns(a)
        return frozenset(out)
    raise TypeError(f"not a column expression: {expr!r}")


def _colexpr_functions(expr: ColExpr) -> frozenset[str]:
    if isinstance(expr, CApp):
        out = {expr.name}
        for a in expr.args:
            out |= _colexpr_functions(a)
        return frozenset(out)
    return frozenset()


@dataclass(frozen=True, slots=True)
class Condition:
    """A comparison between two column expressions.

    ``op`` is one of ``'='``, ``'!='``, ``'<'``, ``'<='``, ``'>'``,
    ``'>='``.  The paper writes ``@2==@4`` for join and selection
    conditions; the ordering operators realize the externally defined
    arithmetic predicates of Section 9(d).
    """

    left: ColExpr
    op: str
    right: ColExpr

    _OPS = ("=", "!=", "<", "<=", ">", ">=")

    def __post_init__(self) -> None:
        if self.op not in self._OPS:
            raise EvaluationError(
                f"condition operator must be one of {self._OPS}, got {self.op!r}")

    def columns(self) -> frozenset[int]:
        return colexpr_columns(self.left) | colexpr_columns(self.right)

    def __str__(self) -> str:
        symbol = "==" if self.op == "=" else self.op
        return f"{self.left}{symbol}{self.right}"


def compare_values(op: str, left, right) -> bool:
    """Comparison semantics shared by every evaluator.

    Equality is Python equality; the ordering predicates delegate to
    the host language's ordering, and values the host cannot order
    (e.g. str vs int) simply fail the predicate — external predicates
    hold only where the host defines them.

    Partial functions: an UNDEFINED operand makes ``=`` and every
    ordering predicate false and ``!=`` true — an atom involving an
    undefined application never holds, so its negation does.
    """
    from repro.data.interpretation import UNDEFINED
    if left is UNDEFINED or right is UNDEFINED:
        return op == "!="
    if op == "=":
        return left == right
    if op == "!=":
        return left != right
    try:
        if op == "<":
            return left < right
        if op == "<=":
            return left <= right
        if op == ">":
            return left > right
        if op == ">=":
            return left >= right
    except TypeError:
        return False
    raise EvaluationError(f"unknown comparison operator {op!r}")


# ---------------------------------------------------------------------------
# Algebra expressions
# ---------------------------------------------------------------------------

class AlgebraExpr:
    """Abstract base of algebra expressions."""

    __slots__ = ()


@dataclass(frozen=True, slots=True)
class Rel(AlgebraExpr):
    """A database relation by name."""

    name: str


@dataclass(frozen=True, slots=True)
class Lit(AlgebraExpr):
    """A literal relation with explicit rows."""

    arity: int
    rows: frozenset[tuple]

    def __post_init__(self) -> None:
        if not isinstance(self.rows, frozenset):
            object.__setattr__(self, "rows", frozenset(tuple(r) for r in self.rows))
        for row in self.rows:
            if len(row) != self.arity:
                raise EvaluationError(
                    f"literal row {row!r} does not match arity {self.arity}"
                )


@dataclass(frozen=True, slots=True)
class Project(AlgebraExpr):
    """Extended projection: one output column per expression.

    An *empty* expression list projects to arity 0 — the result is the
    one-row arity-0 relation when the child is non-empty and the empty
    relation otherwise, i.e. the boolean "is the child non-empty"; the
    translator uses this for closed subformulas.
    """

    exprs: tuple[ColExpr, ...]
    child: AlgebraExpr

    def __post_init__(self) -> None:
        if not isinstance(self.exprs, tuple):
            object.__setattr__(self, "exprs", tuple(self.exprs))


@dataclass(frozen=True, slots=True)
class Select(AlgebraExpr):
    """Selection by a conjunction of conditions."""

    conds: frozenset[Condition]
    child: AlgebraExpr

    def __post_init__(self) -> None:
        if not isinstance(self.conds, frozenset):
            object.__setattr__(self, "conds", frozenset(self.conds))


@dataclass(frozen=True, slots=True)
class Join(AlgebraExpr):
    """Theta-join: conditions refer to the concatenated coordinates
    (left columns first, then right)."""

    conds: frozenset[Condition]
    left: AlgebraExpr
    right: AlgebraExpr

    def __post_init__(self) -> None:
        if not isinstance(self.conds, frozenset):
            object.__setattr__(self, "conds", frozenset(self.conds))


@dataclass(frozen=True, slots=True)
class Union(AlgebraExpr):
    left: AlgebraExpr
    right: AlgebraExpr


@dataclass(frozen=True, slots=True)
class Diff(AlgebraExpr):
    left: AlgebraExpr
    right: AlgebraExpr


@dataclass(frozen=True, slots=True)
class Product(AlgebraExpr):
    left: AlgebraExpr
    right: AlgebraExpr


@dataclass(frozen=True, slots=True)
class Enumerate(AlgebraExpr):
    """Inverse-application operator for annotated scalar functions
    ([RBS87]/[Coh86] extension; see :mod:`repro.finds.annotations`).

    For each input row, evaluates ``inputs`` (the known values, in the
    annotation's position order) and appends one output row per tuple
    the named enumerator yields — the finitely many derived values
    making the annotated equation true.  Output arity is the child's
    plus ``out_count``.
    """

    enumerator: str
    inputs: tuple[ColExpr, ...]
    out_count: int
    child: AlgebraExpr

    def __post_init__(self) -> None:
        if not isinstance(self.inputs, tuple):
            object.__setattr__(self, "inputs", tuple(self.inputs))
        if self.out_count < 1:
            raise EvaluationError("Enumerate must produce at least one column")


@dataclass(frozen=True, slots=True)
class Params(AlgebraExpr):
    """The run-time parameter relation of a parameterized query
    (Section 9(c): queries that are *em-allowed for X*).

    The host program binds it to a concrete set of parameter tuples
    before execution (:func:`repro.translate.parameterized.bind_parameters`);
    evaluating a plan with an unbound ``Params`` is an error.
    """

    arity: int

    def __post_init__(self) -> None:
        if self.arity < 1:
            raise EvaluationError("parameter relation needs at least one column")


@dataclass(frozen=True, slots=True)
class AdomK(AlgebraExpr):
    """The unary active-domain relation, closed to ``level`` rounds of
    scalar-function application, extended with the ``extras`` constants.

    This operator exists *only* for the [AB88]-style baseline
    translation; the paper's translation never emits it — that is the
    efficiency point of experiment E6.
    """

    level: int
    extras: frozenset

    def __post_init__(self) -> None:
        if self.level < 0:
            raise EvaluationError("AdomK level must be >= 0")
        if not isinstance(self.extras, frozenset):
            object.__setattr__(self, "extras", frozenset(self.extras))


# ---------------------------------------------------------------------------
# Structural helpers
# ---------------------------------------------------------------------------

def walk_algebra(expr: AlgebraExpr) -> Iterator[AlgebraExpr]:
    """Yield ``expr`` and all of its children, pre-order."""
    stack = [expr]
    while stack:
        current = stack.pop()
        yield current
        if isinstance(current, (Project, Select, Enumerate)):
            stack.append(current.child)
        elif isinstance(current, (Join, Union, Diff, Product)):
            stack.append(current.right)
            stack.append(current.left)


def algebra_size(expr: AlgebraExpr) -> int:
    """Number of operator nodes — the plan-size measure of E9."""
    return sum(1 for _ in walk_algebra(expr))


def algebra_function_names(expr: AlgebraExpr) -> frozenset[str]:
    """Scalar function names applied anywhere in the plan."""
    out: set[str] = set()
    for node in walk_algebra(expr):
        if isinstance(node, Project):
            for e in node.exprs:
                out |= _colexpr_functions(e)
        elif isinstance(node, Enumerate):
            for e in node.inputs:
                out |= _colexpr_functions(e)
        elif isinstance(node, (Select, Join)):
            for cond in node.conds:
                out |= _colexpr_functions(cond.left)
                out |= _colexpr_functions(cond.right)
    return frozenset(out)


def arity_of(expr: AlgebraExpr, catalog: Mapping[str, int]) -> int:
    """Output arity of ``expr`` given relation arities in ``catalog``.

    Raises :class:`EvaluationError` on inconsistencies (mismatched
    union/diff arities, out-of-range coordinates), making this a static
    type check for plans.
    """
    if isinstance(expr, Rel):
        try:
            return catalog[expr.name]
        except KeyError:
            raise EvaluationError(f"unknown relation {expr.name!r} in plan") from None
    if isinstance(expr, Lit):
        return expr.arity
    if isinstance(expr, AdomK):
        return 1
    if isinstance(expr, Params):
        return expr.arity
    if isinstance(expr, Enumerate):
        child = arity_of(expr.child, catalog)
        for e in expr.inputs:
            bad = [i for i in colexpr_columns(e) if i > child]
            if bad:
                raise EvaluationError(
                    f"enumerate input refers to @{bad[0]} but child arity is {child}")
        return child + expr.out_count
    if isinstance(expr, Project):
        child = arity_of(expr.child, catalog)
        for e in expr.exprs:
            bad = [i for i in colexpr_columns(e) if i > child]
            if bad:
                raise EvaluationError(
                    f"projection refers to @{bad[0]} but child arity is {child}"
                )
        return len(expr.exprs)
    if isinstance(expr, Select):
        child = arity_of(expr.child, catalog)
        for cond in expr.conds:
            bad = [i for i in cond.columns() if i > child]
            if bad:
                raise EvaluationError(
                    f"selection refers to @{bad[0]} but child arity is {child}"
                )
        return child
    if isinstance(expr, Join):
        total = arity_of(expr.left, catalog) + arity_of(expr.right, catalog)
        for cond in expr.conds:
            bad = [i for i in cond.columns() if i > total]
            if bad:
                raise EvaluationError(
                    f"join condition refers to @{bad[0]} but joined arity is {total}"
                )
        return total
    if isinstance(expr, (Union, Diff)):
        left = arity_of(expr.left, catalog)
        right = arity_of(expr.right, catalog)
        if left != right:
            op = "union" if isinstance(expr, Union) else "difference"
            raise EvaluationError(f"{op} arity mismatch: {left} vs {right}")
        return left
    if isinstance(expr, Product):
        return arity_of(expr.left, catalog) + arity_of(expr.right, catalog)
    raise TypeError(f"not an algebra expression: {expr!r}")
