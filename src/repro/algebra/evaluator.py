"""Reference evaluator for the extended algebra.

Evaluates an :class:`~repro.algebra.ast.AlgebraExpr` against an
``(Instance, Interpretation)`` pair, producing a
:class:`~repro.data.relation.Relation`.  This evaluator favours clarity
over speed (set comprehensions, no indexes); the
:mod:`repro.engine` package provides the physical operators used for
performance experiments.

``EvalStats`` counts intermediate rows, which is the cost measure the
E6 baseline comparison reports — the Adom-product plans of the [AB88]
translation materialize dramatically larger intermediates than the
[GT91]-style plans the paper's algorithm emits.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Hashable

from repro.algebra.ast import (
    AdomK,
    Enumerate,
    Params,
    compare_values,
    AlgebraExpr,
    CApp,
    CConst,
    Col,
    ColExpr,
    Condition,
    Diff,
    Join,
    Lit,
    Product,
    Project,
    Rel,
    Select,
    Union,
)
from repro.core.schema import DatabaseSchema
from repro.data.domain import term_closure
from repro.data.instance import Instance
from repro.data.interpretation import Interpretation, UNDEFINED
from repro.data.relation import Relation
from repro.errors import EvaluationError

__all__ = ["evaluate", "eval_colexpr", "EvalStats"]


@dataclass
class EvalStats:
    """Counters accumulated over one evaluation."""

    rows_produced: int = 0
    operator_rows: dict[str, int] = field(default_factory=dict)

    def record(self, operator: str, rows: int) -> None:
        self.rows_produced += rows
        self.operator_rows[operator] = self.operator_rows.get(operator, 0) + rows


def eval_colexpr(expr: ColExpr, row: tuple, interpretation: Interpretation) -> Hashable:
    """Evaluate a column expression against a row (1-based coordinates)."""
    if isinstance(expr, Col):
        if expr.index > len(row):
            raise EvaluationError(
                f"column @{expr.index} out of range for row of width {len(row)}"
            )
        return row[expr.index - 1]
    if isinstance(expr, CConst):
        return expr.value
    if isinstance(expr, CApp):
        args = [eval_colexpr(a, row, interpretation) for a in expr.args]
        if any(a is UNDEFINED for a in args):
            return UNDEFINED
        return interpretation[expr.name](*args)
    raise TypeError(f"not a column expression: {expr!r}")


def _satisfies(conds: frozenset[Condition], row: tuple,
               interpretation: Interpretation) -> bool:
    for cond in conds:
        left = eval_colexpr(cond.left, row, interpretation)
        right = eval_colexpr(cond.right, row, interpretation)
        if not compare_values(cond.op, left, right):
            return False
    return True


def evaluate(expr: AlgebraExpr, instance: Instance,
             interpretation: Interpretation,
             schema: DatabaseSchema | None = None,
             stats: EvalStats | None = None,
             profile=None) -> Relation:
    """Evaluate ``expr`` to a relation.

    ``schema`` is required only when the plan contains :class:`AdomK`
    (the active-domain closure needs the function signatures).

    ``profile`` (an :class:`~repro.obs.profile.ExecutionProfile`)
    additionally records one stats node per algebra node — rows
    produced, calls, and cumulative elapsed time — mirroring what the
    physical engine records, so the reference evaluator supports the
    same ``EXPLAIN ANALYZE`` rendering.  ``None`` (the default) leaves
    the evaluation path untouched.
    """

    def record(name: str, rel: Relation) -> Relation:
        if stats is not None:
            stats.record(name, len(rel))
        return rel

    def base(node: AlgebraExpr) -> Relation:
        if isinstance(node, Rel):
            return record("rel", instance.relation(node.name))
        if isinstance(node, Lit):
            return record("lit", Relation(node.arity, node.rows))
        if isinstance(node, Params):
            raise EvaluationError(
                "plan contains an unbound parameter relation; call "
                "bind_parameters(plan, rows) before evaluating")
        if isinstance(node, AdomK):
            if schema is None:
                raise EvaluationError("AdomK requires a schema to close under functions")
            base = set(instance.active_domain()) | set(node.extras)
            closed = term_closure(base, node.level, interpretation, schema)
            return record("adom", Relation.from_values(closed))
        if isinstance(node, Project):
            child = go(node.child)
            rows = set()
            for row in child:
                out = tuple(eval_colexpr(e, row, interpretation)
                            for e in node.exprs)
                # a row constructing an UNDEFINED value is dropped: no
                # domain value equals the undefined application
                if any(v is UNDEFINED for v in out):
                    continue
                rows.add(out)
            return record("project", Relation(len(node.exprs), rows))
        if isinstance(node, Select):
            child = go(node.child)
            rows = {row for row in child if _satisfies(node.conds, row, interpretation)}
            return record("select", Relation(child.arity, rows))
        if isinstance(node, Enumerate):
            child = go(node.child)
            enum = interpretation.enumerator(node.enumerator)
            rows = set()
            for row in child:
                values = [eval_colexpr(e, row, interpretation)
                          for e in node.inputs]
                if any(v is UNDEFINED for v in values):
                    continue
                for out in enum(*values):
                    rows.add(row + tuple(out))
            return record("enumerate",
                          Relation(child.arity + node.out_count, rows))
        if isinstance(node, Join):
            left = go(node.left)
            right = go(node.right)
            rows = {
                lrow + rrow
                for lrow in left
                for rrow in right
                if _satisfies(node.conds, lrow + rrow, interpretation)
            }
            return record("join", Relation(left.arity + right.arity, rows))
        if isinstance(node, Union):
            out = go(node.left).union(go(node.right))
            return record("union", out)
        if isinstance(node, Diff):
            out = go(node.left).difference(go(node.right))
            return record("diff", out)
        if isinstance(node, Product):
            out = go(node.left).product(go(node.right))
            return record("product", out)
        raise TypeError(f"not an algebra expression: {node!r}")

    if profile is None:
        go = base
        return go(expr)

    import time as _time
    from repro.obs.profile import algebra_label

    # Children register themselves into the innermost open frame, so a
    # node learns its children's ids when its own evaluation returns
    # (registration is bottom-up, matching the physical planner).
    frames: list[list[int]] = [[]]

    def go(node: AlgebraExpr) -> Relation:
        frames.append([])
        start = _time.perf_counter()
        rel = base(node)
        elapsed = _time.perf_counter() - start
        children = frames.pop()
        label, detail = algebra_label(node)
        op_stats = profile.register(label, detail, algebra_node=node,
                                    children=children)
        op_stats.calls += 1
        op_stats.rows_out += len(rel)
        op_stats.elapsed_s += elapsed
        # children are fully evaluated within this node's timing window,
        # so their cumulative time is exactly this node's child share
        op_stats.child_elapsed_s += sum(
            profile.nodes[c].elapsed_s for c in children)
        frames[-1].append(op_stats.op_id)
        return rel

    return go(expr)
