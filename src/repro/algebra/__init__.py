"""The extended relational algebra (coordinate positions, scalar
functions via extended projection).

* :mod:`repro.algebra.ast` — expression nodes and static arity checking;
* :mod:`repro.algebra.evaluator` — reference evaluation with row stats;
* :mod:`repro.algebra.printer` — paper-style plan rendering;
* :mod:`repro.algebra.simplifier` — equivalence-preserving cleanups.
"""

from repro.algebra.ast import (
    AdomK,
    AlgebraExpr,
    CApp,
    CConst,
    Col,
    ColExpr,
    Condition,
    Diff,
    Join,
    Lit,
    Product,
    Project,
    Rel,
    Select,
    Union,
    algebra_function_names,
    algebra_size,
    arity_of,
    colexpr_columns,
    walk_algebra,
)
from repro.algebra.evaluator import EvalStats, eval_colexpr, evaluate
from repro.algebra.printer import explain, to_algebra_text
from repro.algebra.simplifier import simplify

__all__ = [
    "AlgebraExpr", "Rel", "Lit", "Project", "Select", "Join",
    "Union", "Diff", "Product", "AdomK",
    "ColExpr", "Col", "CConst", "CApp", "Condition",
    "arity_of", "algebra_size", "algebra_function_names",
    "walk_algebra", "colexpr_columns",
    "evaluate", "eval_colexpr", "EvalStats",
    "to_algebra_text", "explain", "simplify",
]
