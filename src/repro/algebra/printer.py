"""Paper-style rendering of algebra plans.

``to_algebra_text`` prints plans in the notation of the paper, e.g.::

    project([g(f(@1))], R)
    R - project([@1,@2,@3], join({@2==@4, @3==@5}, R, S))

``explain`` renders an indented operator tree for longer plans.
"""

from __future__ import annotations

from repro.algebra.ast import (
    AdomK,
    AlgebraExpr,
    Enumerate,
    Params,
    Diff,
    Join,
    Lit,
    Product,
    Project,
    Rel,
    Select,
    Union,
)

__all__ = ["to_algebra_text", "explain"]


def _conds_text(conds) -> str:
    return "{" + ", ".join(sorted(str(c) for c in conds)) + "}"


def to_algebra_text(expr: AlgebraExpr) -> str:
    """Single-line, paper-style rendering."""
    if isinstance(expr, Rel):
        return expr.name
    if isinstance(expr, Lit):
        rows = sorted(expr.rows, key=repr)
        inner = ", ".join(
            "(" + ", ".join(repr(v) for v in row) + ")" for row in rows
        )
        return f"lit[{expr.arity}]{{{inner}}}"
    if isinstance(expr, AdomK):
        extras = ""
        if expr.extras:
            extras = ", extras=" + repr(sorted(expr.extras, key=repr))
        return f"Adom^{expr.level}({extras.lstrip(', ')})" if extras else f"Adom^{expr.level}"
    if isinstance(expr, Params):
        return f"params[{expr.arity}]"
    if isinstance(expr, Enumerate):
        inputs = ",".join(str(e) for e in expr.inputs)
        return (f"enumerate[{expr.enumerator}]([{inputs}], "
                f"{to_algebra_text(expr.child)})")
    if isinstance(expr, Project):
        exprs = ",".join(str(e) for e in expr.exprs)
        return f"project([{exprs}], {to_algebra_text(expr.child)})"
    if isinstance(expr, Select):
        return f"select({_conds_text(expr.conds)}, {to_algebra_text(expr.child)})"
    if isinstance(expr, Join):
        return (f"join({_conds_text(expr.conds)}, "
                f"{to_algebra_text(expr.left)}, {to_algebra_text(expr.right)})")
    if isinstance(expr, Union):
        return f"({to_algebra_text(expr.left)} + {to_algebra_text(expr.right)})"
    if isinstance(expr, Diff):
        return f"({to_algebra_text(expr.left)} - {to_algebra_text(expr.right)})"
    if isinstance(expr, Product):
        return f"({to_algebra_text(expr.left)} x {to_algebra_text(expr.right)})"
    raise TypeError(f"not an algebra expression: {expr!r}")


def explain(expr: AlgebraExpr, indent: int = 0) -> str:
    """Indented multi-line operator tree."""
    pad = "  " * indent
    if isinstance(expr, Rel):
        return f"{pad}Rel {expr.name}"
    if isinstance(expr, Lit):
        return f"{pad}Lit arity={expr.arity} rows={len(expr.rows)}"
    if isinstance(expr, AdomK):
        return f"{pad}Adom level={expr.level} extras={len(expr.extras)}"
    if isinstance(expr, Params):
        return f"{pad}Params arity={expr.arity}"
    if isinstance(expr, Enumerate):
        inputs = ", ".join(str(e) for e in expr.inputs)
        return (f"{pad}Enumerate {expr.enumerator}({inputs}) +{expr.out_count}\n"
                + explain(expr.child, indent + 1))
    if isinstance(expr, Project):
        exprs = ", ".join(str(e) for e in expr.exprs)
        return f"{pad}Project [{exprs}]\n" + explain(expr.child, indent + 1)
    if isinstance(expr, Select):
        return f"{pad}Select {_conds_text(expr.conds)}\n" + explain(expr.child, indent + 1)
    if isinstance(expr, Join):
        return (f"{pad}Join {_conds_text(expr.conds)}\n"
                + explain(expr.left, indent + 1) + "\n"
                + explain(expr.right, indent + 1))
    for cls, label in ((Union, "Union"), (Diff, "Diff"), (Product, "Product")):
        if isinstance(expr, cls):
            return (f"{pad}{label}\n"
                    + explain(expr.left, indent + 1) + "\n"
                    + explain(expr.right, indent + 1))
    raise TypeError(f"not an algebra expression: {expr!r}")
