"""Algebraic plan simplification.

The translator emits structurally regular plans (a projection over a
chain of joins and selections per RANF conjunction); this pass cleans
the common redundancies so the plans in EXPERIMENTS.md read like the
paper's hand-written ones:

* cascade projections (``project(A, project(B, e))`` composes);
* merge cascading selections;
* turn a selection over a product into a join;
* drop identity projections and empty selection sets.

Every rewrite preserves the evaluated relation exactly (tested against
the reference evaluator on random instances).
"""

from __future__ import annotations

from typing import Mapping

from repro.algebra.ast import (
    AlgebraExpr,
    Enumerate,
    CApp,
    CConst,
    Col,
    ColExpr,
    Diff,
    Join,
    Lit,
    Product,
    Project,
    Select,
    Union,
    arity_of,
)

__all__ = ["simplify"]


def _is_true_relation(expr: AlgebraExpr) -> bool:
    """The arity-0 one-row literal: the neutral element of product/join."""
    return isinstance(expr, Lit) and expr.arity == 0 and expr.rows == frozenset({()})


def _substitute_cols(expr: ColExpr, replacements: tuple[ColExpr, ...]) -> ColExpr:
    """Replace ``@i`` by ``replacements[i-1]`` recursively."""
    if isinstance(expr, Col):
        return replacements[expr.index - 1]
    if isinstance(expr, CConst):
        return expr
    if isinstance(expr, CApp):
        return CApp(expr.name, tuple(_substitute_cols(a, replacements) for a in expr.args))
    raise TypeError(f"not a column expression: {expr!r}")


def _rewrite_once(expr: AlgebraExpr, catalog: Mapping[str, int]) -> AlgebraExpr:
    if isinstance(expr, Project):
        child = _rewrite_once(expr.child, catalog)
        # cascade projections: outer expressions are over the inner outputs
        if isinstance(child, Project):
            composed = tuple(_substitute_cols(e, child.exprs) for e in expr.exprs)
            return _rewrite_once(Project(composed, child.child), catalog)
        # identity projection
        child_arity = arity_of(child, catalog)
        identity = tuple(Col(i) for i in range(1, child_arity + 1))
        if expr.exprs == identity:
            return child
        return Project(expr.exprs, child)
    if isinstance(expr, Select):
        child = _rewrite_once(expr.child, catalog)
        if not expr.conds:
            return child
        if isinstance(child, Select):
            return _rewrite_once(Select(child.conds | expr.conds, child.child), catalog)
        if isinstance(child, Product):
            return _rewrite_once(Join(expr.conds, child.left, child.right), catalog)
        if isinstance(child, Join):
            return _rewrite_once(Join(child.conds | expr.conds, child.left, child.right),
                                 catalog)
        return Select(expr.conds, child)
    if isinstance(expr, Join):
        left = _rewrite_once(expr.left, catalog)
        right = _rewrite_once(expr.right, catalog)
        if _is_true_relation(left):
            out: AlgebraExpr = right
            if expr.conds:
                out = Select(expr.conds, out)
            return _rewrite_once(out, catalog)
        if _is_true_relation(right):
            out = left
            if expr.conds:
                out = Select(expr.conds, out)
            return _rewrite_once(out, catalog)
        if not expr.conds:
            return Product(left, right)
        return Join(expr.conds, left, right)
    if isinstance(expr, Union):
        return Union(_rewrite_once(expr.left, catalog), _rewrite_once(expr.right, catalog))
    if isinstance(expr, Diff):
        return Diff(_rewrite_once(expr.left, catalog), _rewrite_once(expr.right, catalog))
    if isinstance(expr, Enumerate):
        return Enumerate(expr.enumerator, expr.inputs,
                         expr.out_count, _rewrite_once(expr.child, catalog))
    if isinstance(expr, Product):
        left = _rewrite_once(expr.left, catalog)
        right = _rewrite_once(expr.right, catalog)
        if _is_true_relation(left):
            return right
        if _is_true_relation(right):
            return left
        return Product(left, right)
    return expr


def simplify(expr: AlgebraExpr, catalog: Mapping[str, int],
             max_rounds: int = 8, verify: bool = False) -> AlgebraExpr:
    """Apply the rewrites to a fixed point (bounded by ``max_rounds``).

    With ``verify=True`` the plan sanitizer
    (:mod:`repro.analysis.sanitizer`) re-checks the plan after every
    rewrite round and raises
    :class:`~repro.errors.PlanInvariantError` naming the round that
    corrupted it — each rewrite must preserve arity, not just the
    fixed point.
    """
    if verify:
        # Imported lazily: the sanitizer depends on this package.
        from repro.analysis.sanitizer import check_plan
        expected = len(expr.exprs) if isinstance(expr, Project) else None
        check_plan(expr, catalog, phase="simplify input",
                   expected_arity=expected)
    else:
        check_plan = None
        expected = None
    current = expr
    for round_no in range(max_rounds):
        rewritten = _rewrite_once(current, catalog)
        if check_plan is not None:
            check_plan(rewritten, catalog,
                       phase=f"simplifier round {round_no + 1}",
                       expected_arity=expected)
        if rewritten == current:
            return current
        current = rewritten
    return current
