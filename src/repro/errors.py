"""Exception hierarchy for the repro library.

All library-raised exceptions derive from :class:`ReproError`, so callers
can catch a single base class at API boundaries.  The sub-hierarchy follows
the pipeline: building and parsing queries, static safety analysis,
translation into the algebra, and evaluation.
"""

from __future__ import annotations


class ReproError(Exception):
    """Base class of every exception raised by this library."""


class SchemaError(ReproError):
    """A relation or function is used inconsistently with its declaration.

    Raised for arity mismatches, duplicate declarations, and references to
    undeclared relation or function names when validating against a
    :class:`repro.core.schema.DatabaseSchema`.
    """


class ParseError(ReproError):
    """The textual query syntax is malformed."""

    def __init__(self, message: str, position: int = -1, text: str = ""):
        self.position = position
        self.text = text
        if position >= 0 and text:
            window = text[max(0, position - 20):position + 20]
            message = f"{message} (at position {position}: ...{window!r}...)"
        super().__init__(message)


class FormulaError(ReproError):
    """A formula or query AST is structurally invalid.

    Examples: an ``Exists`` that binds no variables, an output term of a
    query mentioning a variable that is not free in the body.
    """


class SafetyError(ReproError):
    """A query fails a safety requirement (e.g. it is not em-allowed)."""


class NotEmAllowedError(SafetyError):
    """The query is not embedded-allowed, so translation is refused.

    The ``reasons`` attribute lists the specific violations found
    (unbounded free variables, quantified variables not bounded in their
    scope), which is what a query compiler would surface to the user.
    """

    def __init__(self, message: str, reasons: list = None):
        self.reasons = list(reasons or [])
        if self.reasons:
            message = message + "; " + "; ".join(str(r) for r in self.reasons)
        super().__init__(message)


class TranslationError(ReproError):
    """The translation pipeline could not produce an algebra query.

    For em-allowed input this indicates a bug (the paper proves the
    algorithm total on em-allowed queries); it is raised deliberately by
    the ablated rule sets used in the T10-necessity experiment.
    """


class TransformationStuckError(TranslationError):
    """No transformation in the active rule set applies, yet the formula
    is not in the target normal form.

    Used by the E4 experiment: running the RANF driver with T10 removed
    gets stuck on the q4 family exactly as the paper describes.
    """


class EvaluationError(ReproError):
    """Evaluation of a calculus or algebra query failed.

    Raised for unknown relation names, arity mismatches discovered at
    run time, and function applications outside the supplied
    interpretation.
    """


class UnsafeEvaluationError(EvaluationError):
    """Direct calculus evaluation required an infinite range.

    The reference evaluator ranges quantified variables over a finite
    universe; this error signals that a caller asked for genuinely
    unbounded evaluation (e.g. evaluating a non-domain-independent query
    with ``range_policy='refuse'``).
    """
