"""Exception hierarchy for the repro library.

All library-raised exceptions derive from :class:`ReproError`, so callers
can catch a single base class at API boundaries.  The sub-hierarchy follows
the pipeline: building and parsing queries, static safety analysis,
translation into the algebra, and evaluation.

This module also defines :class:`SourceSpan`, the line/column location
type shared by :class:`ParseError` and the structured diagnostics of
:mod:`repro.analysis` — it lives here (the leaf of the import graph) so
both can use it without cycles.
"""

from __future__ import annotations

from dataclasses import dataclass


@dataclass(frozen=True, slots=True)
class SourceSpan:
    """A region of a source text: 1-based line and column, plus length.

    ``from_offset`` converts the flat character offsets the tokenizer
    produces; ``underline`` renders the classic two-line excerpt with a
    caret run under the offending characters::

        { x | R(x
              ^^
    """

    line: int
    column: int
    length: int = 1

    def __post_init__(self) -> None:
        if self.line < 1 or self.column < 1 or self.length < 1:
            raise ValueError(
                f"spans are 1-based and non-empty, got {self.line}:{self.column}+{self.length}")

    @classmethod
    def from_offset(cls, text: str, offset: int, length: int = 1) -> "SourceSpan":
        """The span covering ``text[offset:offset+length]``."""
        offset = max(0, min(offset, len(text)))
        before = text[:offset]
        line = before.count("\n") + 1
        column = offset - (before.rfind("\n") + 1) + 1
        return cls(line, column, max(1, length))

    def underline(self, source: str) -> str:
        """The source line of this span with a caret run beneath it."""
        lines = source.splitlines() or [""]
        row = lines[self.line - 1] if self.line <= len(lines) else ""
        width = min(self.length, max(1, len(row) - self.column + 1)) or 1
        carets = " " * (self.column - 1) + "^" * max(1, width)
        return f"{row}\n{carets}"

    def __str__(self) -> str:
        return f"{self.line}:{self.column}"


class ReproError(Exception):
    """Base class of every exception raised by this library."""


class SchemaError(ReproError):
    """A relation or function is used inconsistently with its declaration.

    Raised for arity mismatches, duplicate declarations, and references to
    undeclared relation or function names when validating against a
    :class:`repro.core.schema.DatabaseSchema`.
    """


class ParseError(ReproError):
    """The textual query syntax is malformed.

    Carries the flat ``position`` (for programmatic use), the source
    ``text``, and — when both are known — a :class:`SourceSpan` in
    ``span``; the rendered message includes a caret-underlined excerpt.
    """

    def __init__(self, message: str, position: int = -1, text: str = "",
                 length: int = 1):
        self.position = position
        self.text = text
        self.span: SourceSpan | None = None
        if position >= 0 and text:
            self.span = SourceSpan.from_offset(text, position, length)
            message = (f"{message} (line {self.span.line}, "
                       f"column {self.span.column})\n"
                       + _indent(self.span.underline(text)))
        super().__init__(message)


def _indent(block: str, prefix: str = "  ") -> str:
    return "\n".join(prefix + line for line in block.splitlines())


class FormulaError(ReproError):
    """A formula or query AST is structurally invalid.

    Examples: an ``Exists`` that binds no variables, an output term of a
    query mentioning a variable that is not free in the body.
    """


class SafetyError(ReproError):
    """A query fails a safety requirement (e.g. it is not em-allowed)."""


class NotEmAllowedError(SafetyError):
    """The query is not embedded-allowed, so translation is refused.

    The ``reasons`` attribute lists the specific violations found as
    plain strings (unbounded free variables, quantified variables not
    bounded in their scope); ``diagnostics`` carries the same
    information as structured :class:`repro.analysis.Diagnostic`
    objects when the caller built them.  ``str(err)`` renders the full
    problem list, one bullet per violation.
    """

    def __init__(self, message: str, reasons: list = None,
                 diagnostics: list = None):
        self.diagnostics = list(diagnostics or [])
        if reasons is None and self.diagnostics:
            reasons = [d.message for d in self.diagnostics]
        self.reasons = [str(r) for r in (reasons or [])]
        super().__init__(message)

    def __str__(self) -> str:
        message = super().__str__()
        if not self.reasons:
            return message
        bullets = "\n".join(f"  - {r}" for r in self.reasons)
        return f"{message}\n{bullets}"


class TranslationError(ReproError):
    """The translation pipeline could not produce an algebra query.

    For em-allowed input this indicates a bug (the paper proves the
    algorithm total on em-allowed queries); it is raised deliberately by
    the ablated rule sets used in the T10-necessity experiment.
    """


class TransformationStuckError(TranslationError):
    """No transformation in the active rule set applies, yet the formula
    is not in the target normal form.

    Used by the E4 experiment: running the RANF driver with T10 removed
    gets stuck on the q4 family exactly as the paper describes.
    """


class PlanInvariantError(TranslationError):
    """The algebra plan sanitizer found a structurally invalid plan.

    Raised only under ``verify_plans=True`` (see
    :mod:`repro.analysis.sanitizer`): a pipeline phase or simplifier
    rewrite emitted a plan with out-of-range coordinates, mismatched
    union/difference arities, or conditions over missing columns.  The
    ``diagnostics`` attribute lists every violation found.
    """

    def __init__(self, message: str, diagnostics: list = None):
        self.diagnostics = list(diagnostics or [])
        if self.diagnostics:
            bullets = "; ".join(d.message for d in self.diagnostics)
            message = f"{message}: {bullets}"
        super().__init__(message)


class RewriteValidationError(PlanInvariantError):
    """The translation validator refused an optimizer rewrite.

    Raised by :func:`repro.analysis.validate.check_rewrites` when a
    recorded :class:`~repro.engine.rewrite.RewriteStep` fails its
    per-rule soundness obligation or the rewrite pass as a whole
    violates a global one (root arity, relation provenance, column-fact
    refinement).  The ``diagnostics`` attribute carries the ``TV0xx``
    findings naming the offending rule and node.
    """


class BackendError(ReproError):
    """A pluggable execution backend could not compile or run a plan.

    Raised by :mod:`repro.backends` for plans or values the target
    backend cannot represent (``code`` carries a stable diagnostic
    code, ``hint`` a one-line fix).  The executor treats a backend
    error as a *fallback* signal — the native engine runs the plan and
    the error is recorded on the :class:`~repro.engine.executor.RunReport`
    — so a backend gap degrades performance, never correctness.

    Stable codes:

    ========  ==========================================================
    BK001     unknown IR node kind while decoding serialized plan IR
    BK002     a value the backend's storage cannot represent
    BK003     structurally malformed IR JSON (missing/ill-typed fields)
    BK004     a plan feature the backend does not support
    BK005     unknown backend name
    ========  ==========================================================
    """

    def __init__(self, message: str, code: str = "BK000", hint: str = ""):
        self.code = code
        self.hint = hint
        super().__init__(message)

    def __str__(self) -> str:
        message = f"[{self.code}] {super().__str__()}"
        if self.hint:
            message += f"\n  hint: {self.hint}"
        return message


class EvaluationError(ReproError):
    """Evaluation of a calculus or algebra query failed.

    Raised for unknown relation names, arity mismatches discovered at
    run time, and function applications outside the supplied
    interpretation.
    """


class UnsafeEvaluationError(EvaluationError):
    """Direct calculus evaluation required an infinite range.

    The reference evaluator ranges quantified variables over a finite
    universe; this error signals that a caller asked for genuinely
    unbounded evaluation (e.g. evaluating a non-domain-independent query
    with ``range_policy='refuse'``).
    """
