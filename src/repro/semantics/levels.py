"""The ``||phi||`` level measure (Section 5/6).

Embedded domain independence is relative to a level ``k``: the query
answer must be invariant under interpretation changes outside
``term_k(adom(q, I))``.  Theorem 6.6 bounds the level of an em-allowed
formula by a measure ``||phi||`` of its function nesting.

The paper's exact definition of ``||phi||`` is not in the surviving
text; we provide two measures bracketing it:

* :func:`function_nesting` — the maximum nesting depth of function
  applications in any single atom (a lower bound on the necessary
  level);
* :func:`edi_level` — the total number of function applications in the
  formula (a sound upper bound: each application can extend a
  derivation chain by at most one closure round, e.g.
  ``exists y (f(x)=y & exists z (g(y)=z & ...))`` chains two depth-1
  atoms into a depth-2 value).

The evaluators and the E2 experiment use :func:`edi_level`; the
difference between the two measures is itself reported by E2.
"""

from __future__ import annotations

from repro.core.formulas import Compare, Equals, Formula, RelAtom, subformulas
from repro.core.queries import CalculusQuery
from repro.core.terms import Func, Term, walk_term
from repro.core.formulas import formula_function_depth

__all__ = ["function_nesting", "edi_level", "edi_level_query"]


def function_nesting(formula: Formula) -> int:
    """Maximum function-nesting depth over the formula's atoms."""
    return formula_function_depth(formula)


def _count_apps(term: Term) -> int:
    return sum(1 for node in walk_term(term) if isinstance(node, Func))


def edi_level(formula: Formula) -> int:
    """Total number of function applications — the upper-bound level."""
    total = 0
    for sub in subformulas(formula):
        if isinstance(sub, RelAtom):
            total += sum(_count_apps(t) for t in sub.terms)
        elif isinstance(sub, (Equals, Compare)):
            total += _count_apps(sub.left) + _count_apps(sub.right)
    return total


def edi_level_query(query: CalculusQuery) -> int:
    """Level for a query: function applications in the body *and* the
    head.  Head terms matter for embedded domain independence — for
    ``{ g(f(x)) | R(x) }`` two interpretations must agree on ``f`` over
    the active domain and on ``g`` over its image before the answers
    can coincide, i.e. level 2."""
    total = edi_level(query.body)
    for t in query.head:
        total += _count_apps(t)
    return total
