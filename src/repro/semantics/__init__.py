"""Reference semantics: direct calculus evaluation, levels, EDI checks.

* :mod:`repro.semantics.eval_calculus` — the naive, obviously-correct
  evaluator every fast path is validated against;
* :mod:`repro.semantics.levels` — the ``||phi||`` level measures;
* :mod:`repro.semantics.domain_independence` — empirical falsifiers for
  embedded domain independence (experiment E2).
"""

from repro.semantics.domain_independence import (
    EdiReport,
    check_embedded_domain_independence,
    edi_witness,
)
from repro.semantics.eval_calculus import (
    evaluate_query,
    evaluation_universe,
    query_schema,
    satisfies,
)
from repro.semantics.levels import edi_level, edi_level_query, function_nesting

__all__ = [
    "satisfies",
    "evaluate_query",
    "evaluation_universe",
    "query_schema",
    "edi_level",
    "edi_level_query",
    "function_nesting",
    "EdiReport",
    "edi_witness",
    "check_embedded_domain_independence",
]
