"""Empirical checks of (embedded) domain independence.

A query is *embedded domain independent* (EDI) at level ``k`` when its
answer on ``(I, F)`` equals its answer on ``(I, F')`` for every
interpretation ``F'`` agreeing with ``F`` on ``term_k(adom(q, I))``,
and is insensitive to enlarging the evaluation universe beyond that
closure.  These properties are undecidable in general; this module
provides the *empirical falsifiers* used by experiment E2:

* :func:`edi_witness` perturbs the interpretation outside the protected
  neighborhood and enlarges the universe with fresh constants; any
  answer change is a counterexample to EDI at that level.
* Theorem 6.6 predicts: for em-allowed queries no counterexample
  exists.  The experiment also runs known *non*-EDI queries and reports
  that witnesses are found, so the falsifier itself is validated.
"""

from __future__ import annotations

import random
from dataclasses import dataclass
from typing import Hashable

from repro.core.queries import CalculusQuery
from repro.data.domain import adom, term_closure_applications
from repro.data.instance import Instance
from repro.data.interpretation import Interpretation, perturbed_outside
from repro.data.relation import Relation
from repro.semantics.eval_calculus import (
    evaluate_query,
    evaluation_universe,
    query_schema,
)
from repro.semantics.levels import edi_level_query

__all__ = ["EdiReport", "edi_witness", "check_embedded_domain_independence"]


@dataclass(frozen=True, slots=True)
class EdiReport:
    """Outcome of an EDI falsification attempt.

    ``independent`` is True when no witness was found in ``trials``
    perturbations (evidence, not proof).  When False, ``witness``
    describes the perturbation and the two differing answers.
    """

    independent: bool
    level: int
    trials: int
    witness: str = ""
    baseline_size: int = -1


def edi_witness(query: CalculusQuery, instance: Instance,
                interpretation: Interpretation,
                level: int | None = None,
                trials: int = 5,
                seed: int = 0) -> EdiReport:
    """Try to falsify EDI of ``query`` at ``level`` (default: the
    query's edi level).

    Each trial builds an interpretation agreeing with ``interpretation``
    on every function application examined by the level-``level``
    closure of ``adom(q, I)`` and answering a fresh sentinel value
    everywhere else, then evaluates the query over the *enlarged*
    universe (closure plus the sentinels).  Differing answers falsify
    EDI at that level.
    """
    if level is None:
        level = edi_level_query(query)
    schema = query_schema(query)
    base_values = adom(query, instance)
    protected = term_closure_applications(
        base_values, level, interpretation, schema,
        function_names=query.function_names(),
    )
    protected_args = {args for (_fname, args) in protected}

    baseline = evaluate_query(query, instance, interpretation, level=level)

    rng = random.Random(seed)
    for trial in range(trials):
        sentinel_pool = [f"#fresh{trial}_{i}" for i in range(4)]
        memo: dict[tuple, Hashable] = {}

        def twist(fname: str, args: tuple) -> Hashable:
            # deterministic per application — the perturbed symbol must
            # still denote a *function*
            key = (fname, args)
            if key not in memo:
                memo[key] = rng.choice(sentinel_pool)
            return memo[key]

        perturbed = perturbed_outside(interpretation, protected_args, twist,
                                      name=f"perturbed#{trial}")
        universe = set(evaluation_universe(query, instance, interpretation,
                                           level=level))
        universe |= set(sentinel_pool)
        answer = evaluate_query(query, instance, perturbed,
                                universe=universe)
        if answer != baseline:
            extra = answer.rows ^ baseline.rows
            return EdiReport(
                independent=False, level=level, trials=trial + 1,
                witness=(f"perturbation #{trial} changed the answer; "
                         f"symmetric difference {sorted(extra, key=repr)[:5]}"),
                baseline_size=len(baseline),
            )
    return EdiReport(independent=True, level=level, trials=trials,
                     baseline_size=len(baseline))


def check_embedded_domain_independence(query: CalculusQuery,
                                       instances: list[Instance],
                                       interpretation: Interpretation,
                                       level: int | None = None,
                                       trials: int = 5,
                                       seed: int = 0) -> EdiReport:
    """Run :func:`edi_witness` over several instances; the first witness
    wins, otherwise the last (all-independent) report is returned."""
    report = EdiReport(independent=True, level=level or 0, trials=0)
    for i, instance in enumerate(instances):
        report = edi_witness(query, instance, interpretation,
                             level=level, trials=trials, seed=seed + i)
        if not report.independent:
            return report
    return report
