"""Direct evaluation of calculus queries under embedded semantics.

This is the library's *reference semantics* and the oracle every other
component is tested against.  A query is evaluated by ranging its
variables over a finite universe — by default ``term_k(adom(q, I))``
with ``k`` the query's :func:`~repro.semantics.levels.edi_level` — and
checking satisfaction of the body for every valuation.

For an em-allowed query this computes exactly the paper's semantics
(Theorem 6.6: the answer is already determined at that level); for a
non-domain-independent query the result is *relative to the universe*,
which is precisely what the EDI experiments exploit to demonstrate
domain dependence.

The evaluator is deliberately naive — exponential in the number of
variables — because its job is to be obviously correct, not fast.  The
translated algebra plans and the :mod:`repro.engine` operators are the
fast paths, and they are validated against this.
"""

from __future__ import annotations

from itertools import product
from typing import Hashable, Iterable, Mapping

from repro.core.formulas import (
    And,
    Compare,
    Equals,
    Exists,
    Forall,
    Formula,
    Not,
    Or,
    RelAtom,
)
from repro.core.queries import CalculusQuery
from repro.core.schema import DatabaseSchema
from repro.core.terms import evaluate_term
from repro.data.domain import adom, term_closure
from repro.data.instance import Instance
from repro.data.interpretation import Interpretation, UNDEFINED
from repro.data.relation import Relation
from repro.errors import EvaluationError
from repro.semantics.levels import edi_level_query

__all__ = ["satisfies", "evaluate_query", "query_schema", "evaluation_universe"]


def satisfies(formula: Formula, valuation: Mapping[str, Hashable],
              instance: Instance, interpretation: Interpretation,
              universe: Iterable[Hashable]) -> bool:
    """Truth of ``formula`` under ``valuation``, quantifiers ranging over
    ``universe``."""
    universe = list(universe)

    def go(f: Formula, env: dict[str, Hashable]) -> bool:
        if isinstance(f, RelAtom):
            row = tuple(evaluate_term(t, env, interpretation) for t in f.terms)
            if any(v is UNDEFINED for v in row):
                return False
            return row in instance.relation(f.name)
        if isinstance(f, Equals):
            from repro.algebra.ast import compare_values
            return compare_values(
                "=",
                evaluate_term(f.left, env, interpretation),
                evaluate_term(f.right, env, interpretation))
        if isinstance(f, Compare):
            from repro.algebra.ast import compare_values
            return compare_values(
                f.op,
                evaluate_term(f.left, env, interpretation),
                evaluate_term(f.right, env, interpretation))
        if isinstance(f, Not):
            return not go(f.child, env)
        if isinstance(f, And):
            return all(go(c, env) for c in f.children)
        if isinstance(f, Or):
            return any(go(c, env) for c in f.children)
        if isinstance(f, Exists):
            for values in product(universe, repeat=len(f.vars)):
                extended = dict(env)
                extended.update(zip(f.vars, values))
                if go(f.body, extended):
                    return True
            return False
        if isinstance(f, Forall):
            for values in product(universe, repeat=len(f.vars)):
                extended = dict(env)
                extended.update(zip(f.vars, values))
                if not go(f.body, extended):
                    return False
            return True
        raise TypeError(f"not a formula: {f!r}")

    return go(formula, dict(valuation))


def query_schema(query: CalculusQuery,
                 base: DatabaseSchema | None = None) -> DatabaseSchema:
    """A schema covering exactly the names the query uses.

    When ``base`` is given, its declarations win; names the query uses
    but the base lacks are added with the arities observed in the query.
    Relation arities are taken from the first atom for each name.
    """
    from repro.core.formulas import subformulas
    from repro.core.terms import Func, walk_term

    relations: dict[str, int] = {}
    functions: dict[str, int] = {}
    for sub in subformulas(query.body):
        if isinstance(sub, RelAtom):
            relations.setdefault(sub.name, sub.arity)
    terms = list(query.head)
    for sub in subformulas(query.body):
        if isinstance(sub, RelAtom):
            terms.extend(sub.terms)
        elif isinstance(sub, (Equals, Compare)):
            terms.extend((sub.left, sub.right))
    for t in terms:
        for node in walk_term(t):
            if isinstance(node, Func):
                functions.setdefault(node.name, node.arity)
    if base is not None:
        for decl in base.relations:
            relations[decl.name] = decl.arity
        for sig in base.functions:
            functions[sig.name] = sig.arity
    return DatabaseSchema.of(relations, functions)


def evaluation_universe(query: CalculusQuery, instance: Instance,
                        interpretation: Interpretation,
                        level: int | None = None,
                        schema: DatabaseSchema | None = None) -> frozenset:
    """``term_k(adom(q, I))`` for the query's functions, ``k`` defaulting
    to the query's :func:`~repro.semantics.levels.edi_level_query`."""
    if level is None:
        level = edi_level_query(query)
    schema = query_schema(query, schema)
    return term_closure(
        adom(query, instance), level, interpretation, schema,
        function_names=query.function_names(),
    )


def evaluate_query(query: CalculusQuery, instance: Instance,
                   interpretation: Interpretation,
                   level: int | None = None,
                   universe: Iterable[Hashable] | None = None,
                   schema: DatabaseSchema | None = None,
                   max_valuations: int = 2_000_000) -> Relation:
    """Answer of ``query`` on ``(instance, interpretation)``.

    ``universe`` overrides the default ``term_k(adom)`` range (the EDI
    experiments pass alternative universes explicitly).
    ``max_valuations`` guards against accidentally exponential calls —
    exceeding it raises :class:`EvaluationError` rather than hanging.
    """
    if universe is None:
        universe = evaluation_universe(query, instance, interpretation, level, schema)
    universe = sorted(universe, key=repr)

    free = sorted(query.head_variables)
    if len(universe) ** max(len(free), 1) > max_valuations:
        raise EvaluationError(
            f"direct evaluation would enumerate more than {max_valuations} "
            f"valuations ({len(universe)} values, {len(free)} free variables)"
        )

    rows: set[tuple] = set()
    for values in product(universe, repeat=len(free)):
        env = dict(zip(free, values))
        if satisfies(query.body, env, instance, interpretation, universe):
            row = tuple(
                evaluate_term(t, env, interpretation) for t in query.head
            )
            # head terms applying partial functions outside their domain
            # contribute no answer row
            if any(v is UNDEFINED for v in row):
                continue
            rows.add(row)
    return Relation(query.arity, rows)
