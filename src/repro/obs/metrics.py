"""Runtime metrics: counters, gauges, and timing histograms.

A :class:`MetricsRegistry` names and owns its instruments::

    metrics = MetricsRegistry()
    metrics.counter("rows.scanned").inc(128)
    metrics.gauge("plan.size").set(17)
    with metrics.time("execute"):
        ...

Like the span tracer, a disabled registry (``MetricsRegistry(enabled=
False)``, or the shared :data:`NULL_METRICS`) is zero-overhead: every
lookup returns one shared no-op instrument, so hot paths can record
unconditionally.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field

__all__ = [
    "Counter",
    "Gauge",
    "TimingHistogram",
    "MetricsRegistry",
    "NULL_METRICS",
]


@dataclass
class Counter:
    """Monotonically increasing count."""

    value: int = 0

    def inc(self, n: int = 1) -> None:
        self.value += n

    def to_dict(self) -> dict:
        return {"type": "counter", "value": self.value}


@dataclass
class Gauge:
    """Last-write-wins instantaneous value."""

    value: float = 0.0

    def set(self, value: float) -> None:
        self.value = value

    def to_dict(self) -> dict:
        return {"type": "gauge", "value": self.value}


#: Histogram bucket upper bounds, in seconds (powers of ten around the
#: micro-to-second range this engine operates in; the last bucket is +inf).
TIMING_BUCKETS_S = (1e-5, 1e-4, 1e-3, 1e-2, 1e-1, 1.0, 10.0)


@dataclass
class TimingHistogram:
    """Elapsed-time distribution: count/total/min/max plus log buckets."""

    count: int = 0
    total_s: float = 0.0
    min_s: float = float("inf")
    max_s: float = 0.0
    buckets: list[int] = field(
        default_factory=lambda: [0] * (len(TIMING_BUCKETS_S) + 1))

    def observe(self, seconds: float) -> None:
        self.count += 1
        self.total_s += seconds
        if seconds < self.min_s:
            self.min_s = seconds
        if seconds > self.max_s:
            self.max_s = seconds
        for i, bound in enumerate(TIMING_BUCKETS_S):
            if seconds <= bound:
                self.buckets[i] += 1
                return
        self.buckets[-1] += 1

    @property
    def mean_s(self) -> float:
        return self.total_s / self.count if self.count else 0.0

    def to_dict(self) -> dict:
        return {
            "type": "timing",
            "count": self.count,
            "total_s": self.total_s,
            "min_s": self.min_s if self.count else 0.0,
            "max_s": self.max_s,
            "mean_s": self.mean_s,
            "bucket_bounds_s": list(TIMING_BUCKETS_S),
            "buckets": list(self.buckets),
        }


class _NullInstrument:
    """Shared no-op counter/gauge/histogram for a disabled registry."""

    __slots__ = ()
    value = 0
    count = 0
    total_s = 0.0
    mean_s = 0.0

    def inc(self, n: int = 1) -> None:
        pass

    def set(self, value: float) -> None:
        pass

    def observe(self, seconds: float) -> None:
        pass

    def to_dict(self) -> dict:
        return {"type": "null"}


_NULL_INSTRUMENT = _NullInstrument()


class _TimeContext:
    __slots__ = ("histogram", "_start")

    def __init__(self, histogram):
        self.histogram = histogram

    def __enter__(self):
        self._start = time.perf_counter()
        return self.histogram

    def __exit__(self, *exc) -> bool:
        self.histogram.observe(time.perf_counter() - self._start)
        return False


class _NullTime:
    __slots__ = ()

    def __enter__(self):
        return _NULL_INSTRUMENT

    def __exit__(self, *exc) -> bool:
        return False


_NULL_TIME = _NullTime()


class MetricsRegistry:
    """Named counters, gauges, and timing histograms."""

    __slots__ = ("enabled", "counters", "gauges", "timers")

    def __init__(self, enabled: bool = True):
        self.enabled = enabled
        self.counters: dict[str, Counter] = {}
        self.gauges: dict[str, Gauge] = {}
        self.timers: dict[str, TimingHistogram] = {}

    def counter(self, name: str):
        if not self.enabled:
            return _NULL_INSTRUMENT
        instrument = self.counters.get(name)
        if instrument is None:
            instrument = self.counters[name] = Counter()
        return instrument

    def gauge(self, name: str):
        if not self.enabled:
            return _NULL_INSTRUMENT
        instrument = self.gauges.get(name)
        if instrument is None:
            instrument = self.gauges[name] = Gauge()
        return instrument

    def timer(self, name: str):
        if not self.enabled:
            return _NULL_INSTRUMENT
        instrument = self.timers.get(name)
        if instrument is None:
            instrument = self.timers[name] = TimingHistogram()
        return instrument

    def time(self, name: str):
        """Context manager recording one observation into ``timer(name)``."""
        if not self.enabled:
            return _NULL_TIME
        return _TimeContext(self.timer(name))

    def snapshot(self) -> dict:
        """All instruments as one JSON-ready mapping."""
        out: dict[str, dict] = {}
        for name, instrument in self.counters.items():
            out[name] = instrument.to_dict()
        for name, instrument in self.gauges.items():
            out[name] = instrument.to_dict()
        for name, instrument in self.timers.items():
            out[name] = instrument.to_dict()
        return out


#: Shared disabled registry: safe default for instrumented code paths.
NULL_METRICS = MetricsRegistry(enabled=False)
