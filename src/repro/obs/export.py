"""JSON export of profiles, spans, and metrics.

One bundle format shared by the CLI (``repro profile --json``) and the
benchmark harness (``benchmarks/results/BENCH_profile.json``)::

    {
      "profile": {... ExecutionProfile.to_dict() ...},
      "translation": {"spans": [...]},
      "metrics": {...},
    }

Every section is optional; absent collectors are simply omitted.
"""

from __future__ import annotations

import json
import pathlib

from repro.obs.metrics import MetricsRegistry
from repro.obs.profile import ExecutionProfile
from repro.obs.tracing import SpanTracer

__all__ = ["export_bundle", "bundle_to_json", "save_bundle"]


def export_bundle(profile: ExecutionProfile | None = None,
                  tracer: SpanTracer | None = None,
                  metrics: MetricsRegistry | None = None) -> dict:
    """Combine the collectors into one JSON-ready dict."""
    bundle: dict = {}
    if profile is not None:
        bundle["profile"] = profile.to_dict()
    if tracer is not None:
        bundle["translation"] = tracer.to_dict()
    if metrics is not None:
        bundle["metrics"] = metrics.snapshot()
    return bundle


def bundle_to_json(profile: ExecutionProfile | None = None,
                   tracer: SpanTracer | None = None,
                   metrics: MetricsRegistry | None = None,
                   indent: int | None = 2) -> str:
    """The bundle serialized as a JSON string."""
    return json.dumps(export_bundle(profile, tracer, metrics), indent=indent)


def save_bundle(path: str | pathlib.Path,
                profile: ExecutionProfile | None = None,
                tracer: SpanTracer | None = None,
                metrics: MetricsRegistry | None = None) -> None:
    """Write the bundle to ``path`` as JSON."""
    pathlib.Path(path).write_text(
        bundle_to_json(profile, tracer, metrics) + "\n")
