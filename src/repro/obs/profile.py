"""Per-operator execution profiles.

An :class:`ExecutionProfile` is the runtime mirror of one plan: one
:class:`OperatorStats` record per operator node, holding actual rows
produced, invocation count, cumulative elapsed time, and (once
:meth:`ExecutionProfile.annotate_estimates` has run) the optimizer's
*estimated* cardinality for the originating algebra node.  Both
executors fill it:

* the physical engine (:func:`repro.engine.executor.execute` with
  ``profile=``) wraps every physical operator in a
  :class:`~repro.engine.operators.ProfiledOp`;
* the reference evaluator (:func:`repro.algebra.evaluator.evaluate`
  with ``profile=``) times each recursive node evaluation.

The per-node estimated-versus-actual comparison uses the **q-error**,
``max(est, actual) / min(est, actual)`` with both sides clamped to at
least one row — the standard, always-finite cardinality-estimation
quality measure.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.algebra.ast import (
    AdomK,
    AlgebraExpr,
    Diff,
    Enumerate,
    Join,
    Lit,
    Params,
    Product,
    Project,
    Rel,
    Select,
    Union,
)

__all__ = ["OperatorStats", "ExecutionProfile", "algebra_label", "q_error"]


def algebra_label(node: AlgebraExpr) -> tuple[str, str]:
    """``(label, detail)`` for one algebra node, for profile display."""
    if isinstance(node, Rel):
        return "rel", node.name
    if isinstance(node, Lit):
        return "lit", f"arity={node.arity} rows={len(node.rows)}"
    if isinstance(node, AdomK):
        return "adom", f"level={node.level}"
    if isinstance(node, Params):
        return "params", f"arity={node.arity}"
    if isinstance(node, Project):
        return "project", "[" + ", ".join(str(e) for e in node.exprs) + "]"
    if isinstance(node, Select):
        return "select", "{" + ", ".join(sorted(str(c) for c in node.conds)) + "}"
    if isinstance(node, Join):
        return "join", "{" + ", ".join(sorted(str(c) for c in node.conds)) + "}"
    if isinstance(node, Enumerate):
        inputs = ", ".join(str(e) for e in node.inputs)
        return "enumerate", f"{node.enumerator}({inputs})"
    if isinstance(node, Union):
        return "union", ""
    if isinstance(node, Diff):
        return "diff", ""
    if isinstance(node, Product):
        return "product", ""
    return type(node).__name__.lower(), ""


def q_error(estimated: float | None, actual: int) -> float | None:
    """Always-finite q-error: both sides clamped to >= 1 row."""
    if estimated is None:
        return None
    est = max(float(estimated), 1.0)
    act = max(float(actual), 1.0)
    return est / act if est >= act else act / est


@dataclass
class OperatorStats:
    """Measurements of one operator node over one execution."""

    op_id: int
    label: str                    # operator name, e.g. "hash-join"
    detail: str                   # short one-line specifics
    children: tuple[int, ...] = ()
    #: One-line inferred column facts of the originating algebra node
    #: (see :meth:`repro.analysis.typeinfer.NodeFacts.describe`); empty
    #: when the planner had no type information.
    typed_facts: str = ""
    rows_out: int = 0
    calls: int = 0                # next_batch() invocations (incl. final None)
    elapsed_s: float = 0.0        # cumulative: includes time in children
    child_elapsed_s: float = 0.0  # portion of elapsed_s spent inside children
    estimated_rows: float | None = None
    #: Batches this node processed through its vectorized columnar
    #: kernel / through the tuple fallback.  Both zero outside column
    #: mode (and for the reference evaluator).
    kernel_batches: int = 0
    fallback_batches: int = 0

    @property
    def self_elapsed_s(self) -> float:
        """Time attributable to this node alone (``elapsed_s`` minus the
        children's share, clamped at zero against timer jitter)."""
        return max(0.0, self.elapsed_s - self.child_elapsed_s)

    @property
    def q_error(self) -> float | None:
        return q_error(self.estimated_rows, self.rows_out)


class ExecutionProfile:
    """Per-node runtime statistics of one plan execution."""

    __slots__ = ("query", "nodes", "_algebra", "elapsed_s", "result_rows",
                 "function_calls")

    def __init__(self, query: str | None = None):
        self.query = query
        self.nodes: dict[int, OperatorStats] = {}
        self._algebra: dict[int, AlgebraExpr] = {}
        self.elapsed_s: float = 0.0
        self.result_rows: int | None = None
        self.function_calls: int | None = None

    def register(self, label: str, detail: str,
                 algebra_node: AlgebraExpr | None = None,
                 children: tuple[int, ...] | list[int] = (),
                 typed_facts: str = "") -> OperatorStats:
        """Create the stats record for one operator node."""
        op_id = len(self.nodes) + 1
        stats = OperatorStats(op_id, label, detail, tuple(children),
                              typed_facts=typed_facts)
        self.nodes[op_id] = stats
        if algebra_node is not None:
            self._algebra[op_id] = algebra_node
        return stats

    @property
    def root_id(self) -> int | None:
        """The node no other node lists as a child (registration is
        bottom-up, so the root is the last such node)."""
        if not self.nodes:
            return None
        referenced = {c for s in self.nodes.values() for c in s.children}
        roots = [op_id for op_id in self.nodes if op_id not in referenced]
        return max(roots) if roots else None

    def rows_in(self, op_id: int) -> int:
        """Rows this node consumed = rows its children produced."""
        return sum(self.nodes[c].rows_out for c in self.nodes[op_id].children)

    def annotate_estimates(self, instance_stats) -> None:
        """Attach ``estimate_cardinality`` of each node's originating
        algebra expression (``instance_stats`` is an
        :class:`repro.engine.stats.InstanceStats`)."""
        from repro.engine.stats import estimate_cardinality
        for op_id, node in self._algebra.items():
            self.nodes[op_id].estimated_rows = estimate_cardinality(
                node, instance_stats)

    def total_rows(self) -> int:
        """Rows produced across all operators (the E6 cost measure)."""
        return sum(s.rows_out for s in self.nodes.values())

    def by_class(self) -> dict[str, dict]:
        """Aggregate rows/calls/time and worst q-error per operator label."""
        out: dict[str, dict] = {}
        for stats in self.nodes.values():
            agg = out.setdefault(stats.label, {
                "nodes": 0, "rows_out": 0, "calls": 0,
                "elapsed_s": 0.0, "self_elapsed_s": 0.0, "max_q_error": None,
                "kernel_batches": 0, "fallback_batches": 0,
            })
            agg["nodes"] += 1
            agg["rows_out"] += stats.rows_out
            agg["calls"] += stats.calls
            agg["elapsed_s"] += stats.elapsed_s
            agg["self_elapsed_s"] += stats.self_elapsed_s
            agg["kernel_batches"] += stats.kernel_batches
            agg["fallback_batches"] += stats.fallback_batches
            qe = stats.q_error
            if qe is not None:
                prev = agg["max_q_error"]
                agg["max_q_error"] = qe if prev is None else max(prev, qe)
        return out

    def to_dict(self) -> dict:
        """JSON-ready representation (see :mod:`repro.obs.export`)."""
        operators = []
        for stats in sorted(self.nodes.values(), key=lambda s: s.op_id):
            operators.append({
                "op_id": stats.op_id,
                "label": stats.label,
                "detail": stats.detail,
                "children": list(stats.children),
                "rows_out": stats.rows_out,
                "rows_in": self.rows_in(stats.op_id),
                "calls": stats.calls,
                "elapsed_s": stats.elapsed_s,
                "child_elapsed_s": stats.child_elapsed_s,
                "self_elapsed_s": stats.self_elapsed_s,
                "estimated_rows": stats.estimated_rows,
                "q_error": stats.q_error,
                "typed_facts": stats.typed_facts,
                "kernel_batches": stats.kernel_batches,
                "fallback_batches": stats.fallback_batches,
            })
        return {
            "query": self.query,
            "root_id": self.root_id,
            "elapsed_s": self.elapsed_s,
            "result_rows": self.result_rows,
            "function_calls": self.function_calls,
            "total_operator_rows": self.total_rows(),
            "operators": operators,
            "by_class": self.by_class(),
        }
