"""EXPLAIN ANALYZE rendering: estimated versus actual, side by side.

Given a filled :class:`~repro.obs.profile.ExecutionProfile`,
:func:`render_explain_analyze` prints the operator tree with each
node's *estimated* cardinality (from
:func:`repro.engine.stats.estimate_cardinality`) next to the *actual*
rows produced, the invocation count, the cumulative elapsed time, and
the node's **self** time (cumulative minus the children's share — the
number that localizes a slow operator) — the shape of PostgreSQL's
``EXPLAIN ANALYZE``.  Runs in column mode additionally carry per-node
``kernel=``/``fallback=`` batch counts showing whether each node ran
its vectorized kernel or fell back to tuple batches.  With ``types=True`` (the default) each node also
carries a ``:: [...]`` line showing the column facts the plan type
inferencer (:mod:`repro.analysis.typeinfer`) derived for it — value
types, nullability, constants, keys, and the ``term_k`` finiteness
certificate — when the executor supplied them.
:func:`q_error_summary` aggregates estimation quality per operator
class.
"""

from __future__ import annotations

from repro.obs.profile import ExecutionProfile, OperatorStats

__all__ = ["render_explain_analyze", "q_error_summary"]


def _fmt_rows(value: float | None) -> str:
    if value is None:
        return "?"
    if value == int(value):
        return str(int(value))
    return f"{value:.1f}"


def _node_line(stats: OperatorStats) -> str:
    detail = f" {stats.detail}" if stats.detail else ""
    est = _fmt_rows(stats.estimated_rows)
    qe = stats.q_error
    q_text = f" q-err={qe:.2f}" if qe is not None else ""
    kernel_text = ""
    if stats.kernel_batches or stats.fallback_batches:
        kernel_text = (f" kernel={stats.kernel_batches}"
                       f" fallback={stats.fallback_batches}")
    return (f"{stats.label}{detail}  "
            f"(est={est} rows) "
            f"(actual rows={stats.rows_out} calls={stats.calls} "
            f"time={stats.elapsed_s * 1e3:.3f} ms "
            f"self={stats.self_elapsed_s * 1e3:.3f} ms{q_text}{kernel_text})")


def render_explain_analyze(profile: ExecutionProfile,
                           types: bool = True) -> str:
    """Indented operator tree annotated estimated-vs-actual, with one
    ``::`` typed-facts line per node when available (``types=False``
    suppresses them)."""
    root = profile.root_id
    if root is None:
        return "(empty profile)"
    lines: list[str] = []

    def emit(op_id: int, prefix: str, child_prefix: str) -> None:
        stats = profile.nodes[op_id]
        lines.append(prefix + _node_line(stats))
        children = stats.children
        if types and stats.typed_facts:
            cont = child_prefix + ("│  " if children else "   ")
            lines.append(f"{cont}:: {stats.typed_facts}")
        for i, child in enumerate(children):
            last = i == len(children) - 1
            branch = "└─ " if last else "├─ "
            cont = "   " if last else "│  "
            emit(child, child_prefix + branch, child_prefix + cont)

    emit(root, "", "")
    footer = []
    if profile.result_rows is not None:
        footer.append(f"result rows: {profile.result_rows}")
    footer.append(f"execution time: {profile.elapsed_s * 1e3:.3f} ms")
    if profile.function_calls is not None:
        footer.append(f"function calls: {profile.function_calls}")
    lines.append("; ".join(footer))
    return "\n".join(lines)


def q_error_summary(profile: ExecutionProfile) -> str:
    """Per-operator-class table: nodes, rows, time, and worst q-error."""
    by_class = profile.by_class()
    if not by_class:
        return "(empty profile)"
    headers = ["operator", "nodes", "rows_out", "calls", "time_ms",
               "self_ms", "max q-err"]
    rows: list[list[str]] = []
    for label in sorted(by_class):
        agg = by_class[label]
        qe = agg["max_q_error"]
        rows.append([
            label,
            str(agg["nodes"]),
            str(agg["rows_out"]),
            str(agg["calls"]),
            f"{agg['elapsed_s'] * 1e3:.3f}",
            f"{agg['self_elapsed_s'] * 1e3:.3f}",
            f"{qe:.2f}" if qe is not None else "-",
        ])
    widths = [len(h) for h in headers]
    for row in rows:
        for i, cell in enumerate(row):
            widths[i] = max(widths[i], len(cell))

    def fmt(cells: list[str]) -> str:
        return "  ".join(c.ljust(w) for c, w in zip(cells, widths)).rstrip()

    return "\n".join([fmt(headers)] + [fmt(r) for r in rows])
