"""Observability: span tracing, metrics, execution profiles, EXPLAIN ANALYZE.

The measurement layer every optimization PR is judged against:

* :mod:`repro.obs.tracing` — nested timed spans (zero-overhead when
  disabled), threaded through the translation pipeline;
* :mod:`repro.obs.metrics` — named counters, gauges, and timing
  histograms;
* :mod:`repro.obs.profile` — per-operator runtime statistics
  (rows in/out, calls, elapsed time, estimated cardinality) filled by
  both executors;
* :mod:`repro.obs.explain` — ``EXPLAIN ANALYZE``-style rendering with
  estimated-vs-actual q-errors;
* :mod:`repro.obs.export` — JSON bundles for trajectory artifacts.
"""

from repro.obs.explain import q_error_summary, render_explain_analyze
from repro.obs.export import bundle_to_json, export_bundle, save_bundle
from repro.obs.metrics import (
    NULL_METRICS,
    Counter,
    Gauge,
    MetricsRegistry,
    TimingHistogram,
)
from repro.obs.profile import ExecutionProfile, OperatorStats, q_error
from repro.obs.tracing import NULL_TRACER, Span, SpanTracer

__all__ = [
    "Span", "SpanTracer", "NULL_TRACER",
    "Counter", "Gauge", "TimingHistogram", "MetricsRegistry", "NULL_METRICS",
    "ExecutionProfile", "OperatorStats", "q_error",
    "render_explain_analyze", "q_error_summary",
    "export_bundle", "bundle_to_json", "save_bundle",
]
