"""Lightweight nested span tracing.

A :class:`SpanTracer` records a tree of named, wall-clock-timed spans::

    tracer = SpanTracer()
    with tracer.span("translate", query="q4"):
        with tracer.span("enf"):
            ...

Spans nest through a stack; exiting a span records its elapsed time and
re-attaches the parent.  The tracer is **zero-overhead when disabled**:
``SpanTracer(enabled=False).span(...)`` returns one shared no-op
context manager without allocating a span, taking a timestamp, or
touching the stack — so instrumented code paths can call it
unconditionally.  :data:`NULL_TRACER` is the shared disabled instance
used as the default by the pipeline.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field

__all__ = ["Span", "SpanTracer", "NULL_TRACER"]


@dataclass
class Span:
    """One timed region, with the sub-spans opened while it was active."""

    name: str
    attrs: dict = field(default_factory=dict)
    elapsed_s: float = 0.0
    children: list["Span"] = field(default_factory=list)

    def walk(self):
        """Yield this span and all descendants, pre-order."""
        yield self
        for child in self.children:
            yield from child.walk()

    def to_dict(self) -> dict:
        out = {"name": self.name, "elapsed_s": self.elapsed_s}
        if self.attrs:
            out["attrs"] = dict(self.attrs)
        if self.children:
            out["children"] = [c.to_dict() for c in self.children]
        return out

    def __str__(self) -> str:
        return f"{self.name} ({self.elapsed_s * 1e3:.3f} ms)"


class _NullSpan:
    """Shared no-op context manager returned by a disabled tracer."""

    __slots__ = ()

    def __enter__(self) -> "_NullSpan":
        return self

    def __exit__(self, *exc) -> bool:
        return False


_NULL_SPAN = _NullSpan()


class _SpanContext:
    """Context manager that opens/closes one span on the tracer stack."""

    __slots__ = ("tracer", "span", "_start")

    def __init__(self, tracer: "SpanTracer", span: Span):
        self.tracer = tracer
        self.span = span

    def __enter__(self) -> Span:
        self.tracer._stack.append(self.span)
        self._start = time.perf_counter()
        return self.span

    def __exit__(self, *exc) -> bool:
        self.span.elapsed_s += time.perf_counter() - self._start
        stack = self.tracer._stack
        stack.pop()
        if stack:
            stack[-1].children.append(self.span)
        else:
            self.tracer.roots.append(self.span)
        return False


class SpanTracer:
    """Collects a forest of nested timed spans."""

    __slots__ = ("enabled", "roots", "_stack")

    def __init__(self, enabled: bool = True):
        self.enabled = enabled
        self.roots: list[Span] = []
        self._stack: list[Span] = []

    def span(self, name: str, **attrs):
        """Context manager timing one region; nests under the active span."""
        if not self.enabled:
            return _NULL_SPAN
        return _SpanContext(self, Span(name, attrs))

    def walk(self):
        """Every recorded span, pre-order across all roots."""
        for root in self.roots:
            yield from root.walk()

    def find(self, name: str) -> Span | None:
        """First recorded span with ``name`` (pre-order), or None."""
        for span in self.walk():
            if span.name == name:
                return span
        return None

    def total(self, name: str) -> float:
        """Summed elapsed seconds of every span named ``name``."""
        return sum(s.elapsed_s for s in self.walk() if s.name == name)

    def render(self) -> str:
        """Indented text tree of every recorded span."""
        if not self.roots:
            return "(no spans)"
        lines: list[str] = []

        def emit(span: Span, depth: int) -> None:
            attrs = ""
            if span.attrs:
                attrs = "  " + " ".join(f"{k}={v}" for k, v in span.attrs.items())
            lines.append("  " * depth + str(span) + attrs)
            for child in span.children:
                emit(child, depth + 1)

        for root in self.roots:
            emit(root, 0)
        return "\n".join(lines)

    def to_dict(self) -> dict:
        return {"spans": [root.to_dict() for root in self.roots]}


#: Shared disabled tracer: safe default for instrumented code paths.
NULL_TRACER = SpanTracer(enabled=False)
