"""The diagnostics core: structured, renderable analysis results.

Every static check in the library — the formula linter, the explanatory
em-allowed rules, and the algebra plan sanitizer — reports its findings
as :class:`Diagnostic` values instead of flat strings: a stable code
(``EM001``, ``LN104``, ``PL002``), a severity, a human message, a
location (a formula path like ``body[1].exists``, a plan path like
``plan.union.left``, or a :class:`~repro.errors.SourceSpan` when source
text is known), and an optional concrete ``suggestion``.

Rendering follows the familiar compiler style::

    error[EM001] free variables ['y'] are not bounded
      --> body (line 1, column 9)
      { x, y | ~R2(x, y) }
              ^
      in: ~R2(x, y)
      help: add a conjunct that bounds y, e.g. a finite relation atom

JSON export mirrors the :mod:`repro.obs.export` bundle conventions —
one dict with optional sections, serialized stably — so lint output and
profiling output can travel through the same tooling.
"""

from __future__ import annotations

import json
import pathlib
from collections.abc import Iterable
from dataclasses import dataclass, field
from typing import Any

from repro.errors import SourceSpan

__all__ = [
    "ERROR",
    "WARNING",
    "INFO",
    "SEVERITIES",
    "Diagnostic",
    "has_errors",
    "max_severity",
    "render_diagnostic",
    "render_diagnostics",
    "diagnostics_to_dict",
    "diagnostics_to_json",
    "save_diagnostics",
]

#: Severity levels, most severe first.  Plain strings (not an enum) so
#: diagnostics serialize naturally and comparisons read literally.
ERROR = "error"
WARNING = "warning"
INFO = "info"
SEVERITIES = (ERROR, WARNING, INFO)

_RANK = {severity: i for i, severity in enumerate(SEVERITIES)}


@dataclass(frozen=True, slots=True)
class Diagnostic:
    """One finding of a static check.

    * ``code`` — stable identifier (``EM...`` safety, ``LN...`` lint,
      ``PL...`` plan sanitizer); tools filter and suppress by it;
    * ``severity`` — one of :data:`SEVERITIES`;
    * ``message`` — the one-line human statement of the problem;
    * ``path`` — structural location (formula or plan path), may be "";
    * ``span`` — source location when the input came from text;
    * ``subject`` — the offending subformula / plan node, printed;
    * ``suggestion`` — a concrete fix, when the rule knows one.
    """

    code: str
    severity: str
    message: str
    path: str = ""
    span: SourceSpan | None = None
    subject: str = ""
    suggestion: str = ""

    def __post_init__(self) -> None:
        if self.severity not in _RANK:
            raise ValueError(
                f"severity must be one of {SEVERITIES}, got {self.severity!r}")
        if not self.code:
            raise ValueError("diagnostic needs a code")

    @property
    def is_error(self) -> bool:
        return self.severity == ERROR

    def to_dict(self) -> dict[str, Any]:
        """JSON-ready dict; optional fields are omitted when empty."""
        out: dict[str, Any] = {
            "code": self.code,
            "severity": self.severity,
            "message": self.message,
        }
        if self.path:
            out["path"] = self.path
        if self.span is not None:
            out["span"] = {"line": self.span.line, "column": self.span.column,
                           "length": self.span.length}
        if self.subject:
            out["subject"] = self.subject
        if self.suggestion:
            out["suggestion"] = self.suggestion
        return out

    def __str__(self) -> str:
        return f"{self.severity}[{self.code}] {self.message}"


def has_errors(diagnostics: Iterable[Diagnostic]) -> bool:
    """True when any diagnostic has error severity."""
    return any(d.is_error for d in diagnostics)


def max_severity(diagnostics: Iterable[Diagnostic]) -> str | None:
    """The most severe level present, or None for an empty list."""
    best: str | None = None
    for d in diagnostics:
        if best is None or _RANK[d.severity] < _RANK[best]:
            best = d.severity
    return best


def sort_diagnostics(diagnostics: Iterable[Diagnostic]) -> list[Diagnostic]:
    """Stable order: severity first, then code, then path."""
    return sorted(diagnostics, key=lambda d: (_RANK[d.severity], d.code, d.path))


def render_diagnostic(diagnostic: Diagnostic, source: str = "") -> str:
    """Render one diagnostic in the compiler style, with a
    caret-underlined excerpt when a span and the source are known."""
    lines = [str(diagnostic)]
    location = diagnostic.path
    if diagnostic.span is not None:
        where = (f"line {diagnostic.span.line}, "
                 f"column {diagnostic.span.column}")
        location = f"{location} ({where})" if location else where
    if location:
        lines.append(f"  --> {location}")
    if diagnostic.span is not None and source:
        for row in diagnostic.span.underline(source).splitlines():
            lines.append(f"  {row}")
    if diagnostic.subject:
        lines.append(f"  in: {diagnostic.subject}")
    if diagnostic.suggestion:
        lines.append(f"  help: {diagnostic.suggestion}")
    return "\n".join(lines)


def render_diagnostics(diagnostics: Iterable[Diagnostic],
                       source: str = "") -> str:
    """All diagnostics (sorted most severe first) plus a summary line."""
    diagnostics = sort_diagnostics(diagnostics)
    if not diagnostics:
        return "no problems found"
    blocks = [render_diagnostic(d, source) for d in diagnostics]
    counts = {s: sum(1 for d in diagnostics if d.severity == s)
              for s in SEVERITIES}
    summary = ", ".join(f"{n} {s}{'s' if n != 1 else ''}"
                        for s, n in counts.items() if n)
    return "\n".join(blocks) + f"\n{summary}"


def diagnostics_to_dict(diagnostics: Iterable[Diagnostic],
                        source: str = "") -> dict[str, Any]:
    """The lint bundle: diagnostics plus a severity summary.

    Mirrors :func:`repro.obs.export.export_bundle`: one dict with
    sections, empty sections omitted.
    """
    diagnostics = sort_diagnostics(diagnostics)
    bundle: dict[str, Any] = {
        "diagnostics": [d.to_dict() for d in diagnostics],
        "summary": {s: sum(1 for d in diagnostics if d.severity == s)
                    for s in SEVERITIES},
    }
    if source:
        bundle["source"] = source
    return bundle


def diagnostics_to_json(diagnostics: Iterable[Diagnostic],
                        source: str = "",
                        indent: int | None = 2) -> str:
    """The bundle serialized as a JSON string."""
    return json.dumps(diagnostics_to_dict(diagnostics, source), indent=indent)


def save_diagnostics(path: str | pathlib.Path,
                     diagnostics: Iterable[Diagnostic],
                     source: str = "") -> None:
    """Write the bundle to ``path`` as JSON."""
    pathlib.Path(path).write_text(
        diagnostics_to_json(diagnostics, source) + "\n")
