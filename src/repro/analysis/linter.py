"""The formula linter: a rule registry over the calculus IR.

Rules inspect a :class:`LintTarget` (body formula, optional head terms,
optional schema and annotations) and report structured
:class:`~repro.analysis.diagnostics.Diagnostic` values.  The built-in
rule set covers the static mistakes a query author actually makes:

=======  ========  ====================================================
code     severity  finding
=======  ========  ====================================================
LN000    error     source text does not parse
LN001    error     unknown relation (schema given)
LN002    error     relation used with the wrong arity (schema given)
LN003    error     function applied with the wrong arity (schema given)
LN004    warning   quantifier shadows a variable already in scope
LN005    warning   quantified variable never used in the body
LN006    warning   vacuous quantifier (no bound variable is used)
LN007    error     head term uses a variable not free in the body
LN008    warning   trivially true/false atom (``x = x``, ``1 = 2``)
LN009    warning   contradictory equality chain in a conjunction
LN010    warning   double negation
EM001    error     free variables not bounded (safety condition 1)
EM002    error     exists-variables not bounded in scope (condition 2)
EM003    error     forall-variables not bounded in scope (condition 3)
=======  ========  ====================================================

The ``EM``-class rules delegate to
:func:`repro.safety.em_allowed.em_allowed_diagnostics`, which converts
each failed FinD entailment into a diagnostic naming the offending
subformula, the unbounded variables, and a concrete fix (a bounding
conjunct, or a :mod:`repro.finds.annotations` inverse annotation).

The table above lists *diagnostic codes*, of which there are fourteen;
the registry holds exactly **11 registered rules**
(:data:`REGISTERED_RULE_CODES`): ``LN001``–``LN010`` plus one
``EM``-family rule registered under ``EM001`` that emits the
``EM001``–``EM003`` diagnostics.  ``LN000`` is not a registered rule:
:func:`lint_source` emits it directly when the source text fails to
parse, before any rule can run.  A regression test asserts the
registry matches this documented set.

``DEFAULT_LINTER`` holds the built-in rules; build a :class:`Linter`
with a subset (``DEFAULT_LINTER.without("LN004")``) or register custom
rules with the ``@linter.rule(...)`` decorator.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Iterable, Iterator

from repro.analysis.diagnostics import (
    ERROR,
    WARNING,
    Diagnostic,
    sort_diagnostics,
)
from repro.core.formulas import (
    And,
    Compare,
    Equals,
    Exists,
    Forall,
    Formula,
    Not,
    Or,
    free_variables,
    subformulas_with_paths,
)
from repro.core.queries import CalculusQuery
from repro.core.schema import DatabaseSchema
from repro.core.terms import Const, Func, Term, Var, walk_term, \
    variables as term_variables
from repro.errors import FormulaError, ParseError, SchemaError

#: The shape every rule check callable has.
LintCheck = Callable[["LintTarget"], Iterable[Diagnostic]]

__all__ = [
    "LintTarget",
    "LintRule",
    "Linter",
    "DEFAULT_LINTER",
    "REGISTERED_RULE_CODES",
    "lint_formula",
    "lint_query",
    "lint_source",
]

#: The codes of the rules registered on :data:`DEFAULT_LINTER` — the
#: documented "11 rules".  ``LN000`` (parse failure) is emitted by
#: :func:`lint_source` directly and ``EM002``/``EM003`` by the rule
#: registered as ``EM001``, so none of those three appear here.
REGISTERED_RULE_CODES = (
    "LN001", "LN002", "LN003", "LN004", "LN005",
    "LN006", "LN007", "LN008", "LN009", "LN010",
    "EM001",
)


@dataclass(frozen=True, slots=True)
class LintTarget:
    """Everything a lint rule may inspect.

    ``head`` is None when linting a bare formula; ``schema`` and
    ``annotations`` are optional and rules needing them no-op without.
    """

    body: Formula
    head: tuple[Term, ...] | None = None
    schema: DatabaseSchema | None = None
    annotations: object = None

    def atoms(self) -> Iterator[tuple[str, Formula]]:
        """(path, atom) for every relation/equality/comparison atom."""
        for path, sub in subformulas_with_paths(self.body):
            if isinstance(sub, (Equals, Compare)) or hasattr(sub, "terms"):
                yield path, sub


@dataclass(frozen=True, slots=True)
class LintRule:
    """One registered rule: stable code, severity, and a check callable
    mapping a :class:`LintTarget` to an iterable of diagnostics."""

    code: str
    name: str
    severity: str
    description: str
    check: LintCheck


class Linter:
    """An ordered registry of lint rules.

    ``lint`` runs every rule and returns the findings sorted by
    severity.  Registries compose: ``without`` drops rules by code,
    ``rule`` registers new ones (also usable as a decorator)::

        linter = Linter(DEFAULT_LINTER.rules)

        @linter.rule("XX001", "no-W-relation", severity=WARNING)
        def no_w(target):
            ...
    """

    def __init__(self, rules: Iterable[LintRule] = ()) -> None:
        self._rules: dict[str, LintRule] = {}
        for rule in rules:
            self.register(rule)

    def register(self, rule: LintRule) -> LintRule:
        if rule.code in self._rules:
            raise ValueError(f"duplicate lint rule code {rule.code!r}")
        self._rules[rule.code] = rule
        return rule

    def rule(self, code: str, name: str, severity: str = WARNING,
             description: str = "") -> Callable[[LintCheck], LintCheck]:
        """Decorator form of :meth:`register`."""
        def decorate(fn: LintCheck) -> LintCheck:
            self.register(LintRule(code, name, severity,
                                   description or (fn.__doc__ or "").strip(),
                                   fn))
            return fn
        return decorate

    @property
    def rules(self) -> tuple[LintRule, ...]:
        return tuple(self._rules[c] for c in sorted(self._rules))

    def without(self, *codes: str) -> "Linter":
        """A new linter with the named rules removed."""
        dropped = set(codes)
        return Linter(r for r in self.rules if r.code not in dropped)

    def lint(self, target: LintTarget) -> list[Diagnostic]:
        out: list[Diagnostic] = []
        for rule in self.rules:
            out.extend(rule.check(target))
        return sort_diagnostics(out)


DEFAULT_LINTER = Linter()


# ---------------------------------------------------------------------------
# Schema rules (no-ops without a schema)
# ---------------------------------------------------------------------------

@DEFAULT_LINTER.rule("LN001", "unknown-relation", ERROR)
def _unknown_relation(target: LintTarget) -> Iterator[Diagnostic]:
    """A relation atom names a relation the schema does not declare."""
    if target.schema is None:
        return
    for path, sub in subformulas_with_paths(target.body):
        if hasattr(sub, "terms") and not target.schema.has_relation(sub.name):
            declared = sorted(r.name for r in target.schema.relations)
            yield Diagnostic(
                "LN001", ERROR,
                f"unknown relation {sub.name!r}",
                path=path, subject=str(sub),
                suggestion=f"declared relations: {', '.join(declared) or '(none)'}")


@DEFAULT_LINTER.rule("LN002", "relation-arity-mismatch", ERROR)
def _relation_arity(target: LintTarget) -> Iterator[Diagnostic]:
    """A relation atom's arity disagrees with its declaration."""
    if target.schema is None:
        return
    for path, sub in subformulas_with_paths(target.body):
        if hasattr(sub, "terms") and target.schema.has_relation(sub.name):
            decl = target.schema.relation(sub.name)
            if decl.arity != sub.arity:
                yield Diagnostic(
                    "LN002", ERROR,
                    f"relation {sub.name} used with arity {sub.arity}, "
                    f"declared {decl.arity}",
                    path=path, subject=str(sub),
                    suggestion=f"supply exactly {decl.arity} argument(s)")


@DEFAULT_LINTER.rule("LN003", "function-arity-mismatch", ERROR)
def _function_signature(target: LintTarget) -> Iterator[Diagnostic]:
    """A scalar function application disagrees with its signature."""
    schema = target.schema
    if schema is None:
        return

    def check_term(term: Term, path: str,
                   context: str) -> Iterator[Diagnostic]:
        for node in walk_term(term):
            if not isinstance(node, Func):
                continue
            if not schema.has_function(node.name):
                if schema.has_relation(node.name):
                    yield Diagnostic(
                        "LN003", ERROR,
                        f"relation {node.name} used as a scalar function",
                        path=path, subject=context)
                else:
                    yield Diagnostic(
                        "LN003", ERROR,
                        f"unknown function {node.name!r}",
                        path=path, subject=context)
            else:
                sig = schema.function(node.name)
                if sig.arity != node.arity:
                    yield Diagnostic(
                        "LN003", ERROR,
                        f"function {node.name} applied to {node.arity} "
                        f"argument(s), declared {sig.arity}",
                        path=path, subject=context)

    for path, sub in subformulas_with_paths(target.body):
        if hasattr(sub, "terms"):
            for t in sub.terms:
                yield from check_term(t, path, str(sub))
        elif isinstance(sub, (Equals, Compare)):
            yield from check_term(sub.left, path, str(sub))
            yield from check_term(sub.right, path, str(sub))
    for t in target.head or ():
        yield from check_term(t, "head", str(t))


# ---------------------------------------------------------------------------
# Quantifier hygiene
# ---------------------------------------------------------------------------

def _walk_scoped(
        formula: Formula, path: str, scope: frozenset[str],
) -> Iterator[tuple[str, Exists | Forall, frozenset[str]]]:
    """(path, subformula, names-in-scope) for every quantifier node."""
    if isinstance(formula, (Exists, Forall)):
        yield path, formula, scope
        tag = "exists" if isinstance(formula, Exists) else "forall"
        yield from _walk_scoped(formula.body, f"{path}.{tag}",
                                scope | frozenset(formula.vars))
    elif isinstance(formula, Not):
        yield from _walk_scoped(formula.child, f"{path}.not", scope)
    elif isinstance(formula, (And, Or)):
        for i, child in enumerate(formula.children):
            yield from _walk_scoped(child, f"{path}[{i}]", scope)


@DEFAULT_LINTER.rule("LN004", "shadowed-variable", WARNING)
def _shadowed(target: LintTarget) -> Iterator[Diagnostic]:
    """A quantifier rebinds a name already bound (or free) in scope."""
    free = free_variables(target.body)
    for path, sub, scope in _walk_scoped(target.body, "body", frozenset(free)):
        clashes = [v for v in sub.vars if v in scope]
        if clashes:
            yield Diagnostic(
                "LN004", WARNING,
                f"quantifier shadows {clashes} already in scope",
                path=path, subject=str(sub),
                suggestion="rename the inner variable; the pipeline will "
                           "standardize apart, but shadowing obscures intent")


@DEFAULT_LINTER.rule("LN005", "unused-quantified-variable", WARNING)
def _unused_vars(target: LintTarget) -> Iterator[Diagnostic]:
    """A quantified variable never occurs free in the quantifier body."""
    for path, sub in subformulas_with_paths(target.body):
        if not isinstance(sub, (Exists, Forall)):
            continue
        used = free_variables(sub.body)
        unused = [v for v in sub.vars if v not in used]
        if unused and len(unused) < len(sub.vars):
            yield Diagnostic(
                "LN005", WARNING,
                f"quantified variables {unused} never used in the body",
                path=path, subject=str(sub),
                suggestion="drop the unused variable(s) from the quantifier")


@DEFAULT_LINTER.rule("LN006", "vacuous-quantifier", WARNING)
def _vacuous_quantifier(target: LintTarget) -> Iterator[Diagnostic]:
    """No variable the quantifier binds occurs in its body — the whole
    quantifier is a no-op."""
    for path, sub in subformulas_with_paths(target.body):
        if not isinstance(sub, (Exists, Forall)):
            continue
        used = free_variables(sub.body)
        if not any(v in used for v in sub.vars):
            yield Diagnostic(
                "LN006", WARNING,
                f"vacuous quantifier: none of {list(sub.vars)} occurs in "
                f"the body",
                path=path, subject=str(sub),
                suggestion="remove the quantifier; it neither binds nor "
                           "restricts anything")


# ---------------------------------------------------------------------------
# Head / body consistency
# ---------------------------------------------------------------------------

@DEFAULT_LINTER.rule("LN007", "head-variable-not-free", ERROR)
def _head_vars(target: LintTarget) -> Iterator[Diagnostic]:
    """A head term mentions a variable that is not free in the body."""
    if target.head is None:
        return
    body_free = free_variables(target.body)
    for i, term in enumerate(target.head):
        extra = sorted(term_variables(term) - body_free)
        if extra:
            yield Diagnostic(
                "LN007", ERROR,
                f"head term {term} uses variables {extra} not free in the "
                f"body",
                path=f"head[{i}]", subject=str(term),
                suggestion="bind the variable in the body (a relation atom "
                           "or equality) or remove it from the head")


# ---------------------------------------------------------------------------
# Trivial and contradictory atoms
# ---------------------------------------------------------------------------

def _const_value(term: Term) -> object | None:
    return term.value if isinstance(term, Const) else None


@DEFAULT_LINTER.rule("LN008", "trivial-atom", WARNING)
def _trivial_atoms(target: LintTarget) -> Iterator[Diagnostic]:
    """An atom is decidable without looking at any data."""
    # Equality atoms under a negation are reported once, at the ``!=``.
    negated = {id(sub.child) for _, sub in subformulas_with_paths(target.body)
               if isinstance(sub, Not) and isinstance(sub.child, Equals)}
    for path, sub in subformulas_with_paths(target.body):
        if isinstance(sub, Not) and isinstance(sub.child, Equals):
            eq = sub.child
            if eq.left == eq.right:
                yield Diagnostic(
                    "LN008", WARNING,
                    f"atom {eq.left} != {eq.right} is trivially false",
                    path=path, subject=str(sub),
                    suggestion="the enclosing conjunct can never hold")
        elif isinstance(sub, Equals) and id(sub) not in negated:
            if sub.left == sub.right:
                yield Diagnostic(
                    "LN008", WARNING,
                    f"atom {sub} is trivially true",
                    path=path, subject=str(sub),
                    suggestion="drop the atom; it constrains nothing")
            elif (isinstance(sub.left, Const) and isinstance(sub.right, Const)
                    and sub.left.value != sub.right.value):
                yield Diagnostic(
                    "LN008", WARNING,
                    f"atom {sub} is trivially false",
                    path=path, subject=str(sub))
        elif isinstance(sub, Compare):
            if isinstance(sub.left, Const) and isinstance(sub.right, Const):
                yield Diagnostic(
                    "LN008", WARNING,
                    f"comparison {sub} is between two constants",
                    path=path, subject=str(sub),
                    suggestion="fold the constant comparison away")


class _UnionFind:
    """Tiny union-find with per-class constant values, for LN009."""

    def __init__(self) -> None:
        self.parent: dict[str, str] = {}
        self.value: dict[str, object] = {}

    def find(self, name: str) -> str:
        self.parent.setdefault(name, name)
        root = name
        while self.parent[root] != root:
            root = self.parent[root]
        while self.parent[name] != root:
            self.parent[name], name = root, self.parent[name]
        return root

    def assign(self, name: str, value: object) -> object | None:
        """Bind name's class to value; returns the clashing old value
        when the class already holds a different one."""
        root = self.find(name)
        if root in self.value and self.value[root] != value:
            return self.value[root]
        self.value[root] = value
        return None

    def union(self, a: str, b: str) -> tuple[object, object] | None:
        ra, rb = self.find(a), self.find(b)
        if ra == rb:
            return None
        va, vb = self.value.get(ra), self.value.get(rb)
        if va is not None and vb is not None and va != vb:
            return va, vb
        self.parent[ra] = rb
        if vb is None and va is not None:
            self.value[rb] = va
        return None


@DEFAULT_LINTER.rule("LN009", "contradictory-equalities", WARNING)
def _contradictions(target: LintTarget) -> Iterator[Diagnostic]:
    """The equality atoms of one conjunction pin a variable to two
    different constants — the conjunction is unsatisfiable."""
    for path, sub in subformulas_with_paths(target.body):
        if not isinstance(sub, And):
            continue
        uf = _UnionFind()
        for child in sub.children:
            if not isinstance(child, Equals):
                continue
            left, right = child.left, child.right
            if isinstance(left, Var) and isinstance(right, Const):
                clash = uf.assign(left.name, right.value)
                if clash is not None:
                    yield Diagnostic(
                        "LN009", WARNING,
                        f"{left.name} is equated with both {clash!r} and "
                        f"{right.value!r}; the conjunction is unsatisfiable",
                        path=path, subject=str(child),
                        suggestion="remove one of the conflicting equalities")
            elif isinstance(right, Var) and isinstance(left, Const):
                clash = uf.assign(right.name, left.value)
                if clash is not None:
                    yield Diagnostic(
                        "LN009", WARNING,
                        f"{right.name} is equated with both {clash!r} and "
                        f"{left.value!r}; the conjunction is unsatisfiable",
                        path=path, subject=str(child),
                        suggestion="remove one of the conflicting equalities")
            elif isinstance(left, Var) and isinstance(right, Var):
                clash = uf.union(left.name, right.name)
                if clash is not None:
                    yield Diagnostic(
                        "LN009", WARNING,
                        f"equality chain forces {left.name} = {right.name} "
                        f"but they are pinned to {clash[0]!r} and "
                        f"{clash[1]!r}",
                        path=path, subject=str(child),
                        suggestion="remove one of the conflicting equalities")


@DEFAULT_LINTER.rule("LN010", "double-negation", WARNING)
def _double_negation(target: LintTarget) -> Iterator[Diagnostic]:
    """``~~phi`` (including ``~(t != t')``) simplifies away."""
    for path, sub in subformulas_with_paths(target.body):
        if isinstance(sub, Not) and isinstance(sub.child, Not):
            inner = sub.child.child
            if isinstance(inner, Equals):
                fix = f"write {inner} directly"
            else:
                fix = "drop both negations"
            yield Diagnostic(
                "LN010", WARNING,
                f"double negation around {inner}",
                path=path, subject=str(sub), suggestion=fix)


# ---------------------------------------------------------------------------
# Safety (em-allowed) rules — explanatory diagnostics for every failed
# FinD entailment
# ---------------------------------------------------------------------------

@DEFAULT_LINTER.rule("EM001", "em-allowed", ERROR,
                     "the query fails the em-allowed safety criterion")
def _em_allowed(target: LintTarget) -> Iterator[Diagnostic]:
    from repro.safety.em_allowed import em_allowed_diagnostics
    yield from em_allowed_diagnostics(target.body,
                                      annotations=target.annotations)


# ---------------------------------------------------------------------------
# Entry points
# ---------------------------------------------------------------------------

def lint_formula(formula: Formula, schema: DatabaseSchema | None = None,
                 annotations: object = None,
                 linter: Linter | None = None) -> list[Diagnostic]:
    """Lint a bare formula (no head)."""
    linter = linter or DEFAULT_LINTER
    return linter.lint(LintTarget(formula, None, schema, annotations))


def lint_query(query: CalculusQuery, schema: DatabaseSchema | None = None,
               annotations: object = None,
               linter: Linter | None = None) -> list[Diagnostic]:
    """Lint a constructed query (head + body)."""
    linter = linter or DEFAULT_LINTER
    return linter.lint(LintTarget(query.body, query.head, schema, annotations))


def lint_source(text: str, schema: DatabaseSchema | None = None,
                annotations: object = None,
                linter: Linter | None = None) -> list[Diagnostic]:
    """Parse and lint query source text.

    Failures of parsing itself become diagnostics too: a syntax error is
    ``LN000`` (with the source span), a head/body inconsistency is
    ``LN007``.  Parsing prefers the schema-less mode so that schema
    violations surface through the structured rules (LN001–LN003, with
    paths and suggestions) rather than as a blunt parse error; when the
    schema-less parse fails (e.g. relation names that defy the case
    convention), the schema-directed parse is tried before giving up.
    """
    from repro.core.parser import parse_query
    query = None
    first_error: Exception | None = None
    try:
        query = parse_query(text)
    except (ParseError, FormulaError, SchemaError) as err:
        first_error = err
    if query is None and schema is not None:
        try:
            query = parse_query(text, schema)
        except (ParseError, FormulaError, SchemaError):
            pass
    if query is None:
        if isinstance(first_error, FormulaError):
            return [Diagnostic("LN007", ERROR, str(first_error),
                               suggestion="bind every head variable in the "
                                          "body and name every free body "
                                          "variable in the head")]
        message = str(first_error).splitlines()[0]
        span = getattr(first_error, "span", None)
        if span is not None:
            # The span carries the location; drop the rendered suffix.
            message = message.removesuffix(
                f" (line {span.line}, column {span.column})")
        return [Diagnostic("LN000", ERROR, message, span=span)]
    return lint_query(query, schema, annotations, linter)
