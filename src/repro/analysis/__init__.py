"""Static analysis over both IRs: diagnostics, linter, plan sanitizer.

Three layers (see DESIGN.md S19):

* :mod:`repro.analysis.diagnostics` — the :class:`Diagnostic` value
  type, severity order, compiler-style text rendering, and JSON export;
* :mod:`repro.analysis.linter` — a rule registry over the calculus IR
  (schema misuse, quantifier hygiene, trivial/contradictory atoms,
  explanatory em-allowed safety rules);
* :mod:`repro.analysis.sanitizer` — bottom-up schema inference over
  algebra plans, wired into the translation pipeline and simplifier
  behind ``verify_plans``.

Only the diagnostics core is imported eagerly: the safety layer
(:mod:`repro.safety.em_allowed`) imports it, while the linter imports
the safety layer back — the remaining names load lazily via module
``__getattr__`` to keep that cycle open.
"""

from repro.analysis.diagnostics import (
    ERROR,
    INFO,
    SEVERITIES,
    WARNING,
    Diagnostic,
    diagnostics_to_dict,
    diagnostics_to_json,
    has_errors,
    max_severity,
    render_diagnostic,
    render_diagnostics,
    save_diagnostics,
    sort_diagnostics,
)

__all__ = [
    # diagnostics (eager)
    "ERROR",
    "WARNING",
    "INFO",
    "SEVERITIES",
    "Diagnostic",
    "has_errors",
    "max_severity",
    "sort_diagnostics",
    "render_diagnostic",
    "render_diagnostics",
    "diagnostics_to_dict",
    "diagnostics_to_json",
    "save_diagnostics",
    # linter (lazy)
    "Linter",
    "LintRule",
    "LintTarget",
    "DEFAULT_LINTER",
    "lint_formula",
    "lint_query",
    "lint_source",
    # sanitizer (lazy)
    "sanitize_plan",
    "check_plan",
    "set_verify_plans",
    "verify_plans_enabled",
]

_LINTER_NAMES = frozenset({
    "Linter", "LintRule", "LintTarget", "DEFAULT_LINTER",
    "lint_formula", "lint_query", "lint_source",
})
_SANITIZER_NAMES = frozenset({
    "sanitize_plan", "check_plan", "set_verify_plans",
    "verify_plans_enabled",
})


def __getattr__(name: str):
    if name in _LINTER_NAMES:
        from repro.analysis import linter
        return getattr(linter, name)
    if name in _SANITIZER_NAMES:
        from repro.analysis import sanitizer
        return getattr(sanitizer, name)
    raise AttributeError(f"module {__name__!r} has no attribute {name!r}")


def __dir__():
    return sorted(__all__)
