"""Static analysis over both IRs: diagnostics, linter, plan sanitizer,
type inference, and translation validation.

Five layers (see DESIGN.md S19 and S23):

* :mod:`repro.analysis.diagnostics` — the :class:`Diagnostic` value
  type, severity order, compiler-style text rendering, and JSON export;
* :mod:`repro.analysis.linter` — a rule registry over the calculus IR
  (schema misuse, quantifier hygiene, trivial/contradictory atoms,
  explanatory em-allowed safety rules);
* :mod:`repro.analysis.sanitizer` — bottom-up schema inference over
  algebra plans, wired into the translation pipeline and simplifier
  behind ``verify_plans``;
* :mod:`repro.analysis.typeinfer` — the abstract interpreter assigning
  each plan node per-column facts (value type, nullability, function
  depth / ``term_k`` finiteness certificate, constants, provenance,
  keys), reporting ``TY0xx`` diagnostics;
* :mod:`repro.analysis.validate` — the translation validator replaying
  the optimizer's recorded rewrite steps and discharging per-rule
  soundness obligations (``TV0xx``).

Only the diagnostics core is imported eagerly: the safety layer
(:mod:`repro.safety.em_allowed`) imports it, while the linter imports
the safety layer back — the remaining names load lazily via module
``__getattr__`` to keep that cycle open.
"""

from repro.analysis.diagnostics import (
    ERROR,
    INFO,
    SEVERITIES,
    WARNING,
    Diagnostic,
    diagnostics_to_dict,
    diagnostics_to_json,
    has_errors,
    max_severity,
    render_diagnostic,
    render_diagnostics,
    save_diagnostics,
    sort_diagnostics,
)

__all__ = [
    # diagnostics (eager)
    "ERROR",
    "WARNING",
    "INFO",
    "SEVERITIES",
    "Diagnostic",
    "has_errors",
    "max_severity",
    "sort_diagnostics",
    "render_diagnostic",
    "render_diagnostics",
    "diagnostics_to_dict",
    "diagnostics_to_json",
    "save_diagnostics",
    # linter (lazy)
    "Linter",
    "LintRule",
    "LintTarget",
    "DEFAULT_LINTER",
    "REGISTERED_RULE_CODES",
    "lint_formula",
    "lint_query",
    "lint_source",
    # sanitizer (lazy)
    "sanitize_plan",
    "check_plan",
    "set_verify_plans",
    "verify_plans_enabled",
    # typeinfer (lazy)
    "ColumnFact",
    "FinitenessCertificate",
    "NodeFacts",
    "PlanTypes",
    "infer_plan_types",
    "refinement_violations",
    "render_typed_plan",
    # validate (lazy)
    "check_rewrites",
    "refinement_diagnostics",
    "validate_rewrites",
]

_LINTER_NAMES = frozenset({
    "Linter", "LintRule", "LintTarget", "DEFAULT_LINTER",
    "REGISTERED_RULE_CODES", "lint_formula", "lint_query", "lint_source",
})
_SANITIZER_NAMES = frozenset({
    "sanitize_plan", "check_plan", "set_verify_plans",
    "verify_plans_enabled",
})
_TYPEINFER_NAMES = frozenset({
    "ColumnFact", "FinitenessCertificate", "NodeFacts", "PlanTypes",
    "infer_plan_types", "refinement_violations", "render_typed_plan",
})
_VALIDATE_NAMES = frozenset({
    "check_rewrites", "refinement_diagnostics", "validate_rewrites",
})


def __getattr__(name: str) -> object:
    if name in _LINTER_NAMES:
        from repro.analysis import linter
        return getattr(linter, name)
    if name in _SANITIZER_NAMES:
        from repro.analysis import sanitizer
        return getattr(sanitizer, name)
    if name in _TYPEINFER_NAMES:
        from repro.analysis import typeinfer
        return getattr(typeinfer, name)
    if name in _VALIDATE_NAMES:
        from repro.analysis import validate
        return getattr(validate, name)
    raise AttributeError(f"module {__name__!r} has no attribute {name!r}")


def __dir__() -> list[str]:
    return sorted(__all__)
