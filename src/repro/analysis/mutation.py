"""Seeded rewrite-mutation harness: prove the validator catches lies.

A translation validator is only worth its overhead if it actually
rejects unsound rewrites.  This module provides the adversarial half of
that argument: it records real optimizer runs over a deterministic
workload, *corrupts* one recorded :class:`~repro.engine.rewrite.RewriteStep`
(or the final plan, or the shared-subplan set) per trial with a seeded
mutation operator, and checks that
:func:`repro.analysis.validate.validate_rewrites` reports an
error-severity diagnostic naming the offending rule at the corrupted
step's path.

The mutation operators mirror the ways a rewrite pass goes wrong in
practice:

==========================  =============================================
operator                    injected unsoundness
==========================  =============================================
flip-fold-decision          constant comparison decided the wrong way
wrong-arity-empty           empty-fold replacement has the wrong width
drop-pushed-condition       a pushed selection condition disappears
shift-pushed-column         a pushed condition references the wrong column
scramble-prune              column-prune projection remapped wrongly
permute-restore             reorder/swap restoring projection scrambled
retarget-leaf               join reorder swaps in a different relation
widen-root                  the final plan gained an output column
fake-shared                 a "shared" subplan that never occurs twice
==========================  =============================================

:func:`run_mutation_harness` applies every operator to every applicable
recorded step and returns a :class:`MutationReport` with the per-trial
records and the overall catch rate; ``render()`` produces the markdown
artifact CI uploads.  The test suite asserts the catch rate stays at or
above 95% (it is designed to be 100%).
"""

from __future__ import annotations

import random
from dataclasses import dataclass
from typing import Callable, Iterable

from repro.algebra.ast import (
    AlgebraExpr,
    CConst,
    Col,
    ColExpr,
    Condition,
    Diff,
    Join,
    Lit,
    Project,
    Rel,
    Select,
    Union,
)
from repro.analysis.diagnostics import Diagnostic
from repro.analysis.validate import validate_rewrites
from repro.data.instance import Instance
from repro.data.relation import Relation
from repro.engine.rewrite import OptimizationResult, RewriteStep, optimize_plan
from repro.engine.stats import collect_stats

__all__ = [
    "MutationRecord",
    "MutationReport",
    "run_mutation_harness",
    "workload_runs",
]

#: Relation arities of the harness workload.
CATALOG = {"R": 2, "S": 2, "T": 1, "U": 2}


# ---------------------------------------------------------------------------
# Workload: deterministic optimizer runs covering every recorded rule
# ---------------------------------------------------------------------------

def _workload_instance(rng: random.Random) -> Instance:
    def rows(arity: int, n: int, span: int) -> set[tuple]:
        return {tuple(rng.randrange(span) for _ in range(arity))
                for _ in range(n)}

    return Instance({
        "R": Relation(2, rows(2, 40, 25)),
        "S": Relation(2, rows(2, 12, 25)),
        "T": Relation(1, rows(1, 4, 25)),
        "U": Relation(2, rows(2, 30, 25)),
    })


def _workload_plans() -> list[AlgebraExpr]:
    eq = lambda a, b: Condition(Col(a), "=", Col(b))  # noqa: E731
    join_chain = Project(
        (Col(1), Col(4)),
        Join(frozenset({eq(2, 3), eq(4, 5)}),
             Join(frozenset(), Rel("R"), Rel("S")), Rel("T")))
    tautology = Select(
        frozenset({Condition(CConst(1), "=", CConst(1)), eq(1, 2)}),
        Rel("R"))
    empty_join = Project(
        (Col(1),),
        Join(frozenset({eq(2, 3)}), Rel("R"), Lit(1, frozenset())))
    select_union = Select(
        frozenset({Condition(Col(1), "=", CConst(5))}),
        Union(Rel("R"), Rel("U")))
    repeated = Union(
        Join(frozenset({eq(1, 3)}), Rel("R"), Rel("S")),
        Join(frozenset({eq(1, 3)}), Rel("R"), Rel("S")))
    anti_empty = Diff(
        Rel("R"),
        Project((Col(1), Col(2)),
                Join(frozenset({eq(1, 3)}), Rel("R"),
                     Lit(2, frozenset()))))
    return [join_chain, tautology, empty_join, select_union, repeated,
            anti_empty]


def workload_runs(seed: int = 0) -> list[tuple[AlgebraExpr,
                                               OptimizationResult]]:
    """Record one optimizer run per workload plan, deterministically."""
    rng = random.Random(seed)
    stats = collect_stats(_workload_instance(rng))
    runs = []
    for plan in _workload_plans():
        runs.append((plan, optimize_plan(plan, stats, CATALOG,
                                         verify=False)))
    return runs


# ---------------------------------------------------------------------------
# Structural surgery helpers
# ---------------------------------------------------------------------------

def _replace_first(node: AlgebraExpr,
                   pred: Callable[[AlgebraExpr], bool],
                   fn: Callable[[AlgebraExpr], AlgebraExpr],
                   ) -> AlgebraExpr | None:
    """The tree with the first (pre-order) subnode satisfying ``pred``
    replaced by ``fn(subnode)``, or None when nothing matches (or the
    replacement is structurally identical)."""
    done = False

    def go(n: AlgebraExpr) -> AlgebraExpr:
        nonlocal done
        if not done and pred(n):
            done = True
            return fn(n)
        if isinstance(n, Project):
            return Project(n.exprs, go(n.child))
        if isinstance(n, Select):
            return Select(n.conds, go(n.child))
        if isinstance(n, (Join,)):
            left = go(n.left)
            return Join(n.conds, left, go(n.right))
        if isinstance(n, Union):
            left = go(n.left)
            return Union(left, go(n.right))
        if isinstance(n, Diff):
            left = go(n.left)
            return Diff(left, go(n.right))
        return n

    result = go(node)
    if not done or result == node:
        return None
    return result


def _bump_col(cond: Condition) -> Condition:
    if isinstance(cond.left, Col):
        return Condition(Col(cond.left.index + 1), cond.op, cond.right)
    if isinstance(cond.right, Col):
        return Condition(cond.left, cond.op, Col(cond.right.index + 1))
    return cond


def _swap_two_exprs(
        exprs: tuple[ColExpr, ...]) -> tuple[ColExpr, ...] | None:
    for i in range(len(exprs)):
        for j in range(i + 1, len(exprs)):
            if exprs[i] != exprs[j]:
                out = list(exprs)
                out[i], out[j] = out[j], out[i]
                return tuple(out)
    return None


# ---------------------------------------------------------------------------
# Mutation operators over one recorded step
# ---------------------------------------------------------------------------

def _flip_fold_decision(step: RewriteStep) -> RewriteStep | None:
    if step.rule != "fold-const" or len(step.data) != 2:
        return None
    cond, decision = step.data
    return RewriteStep(step.rule, step.detail, data=(cond, not decision))


def _wrong_arity_empty(step: RewriteStep) -> RewriteStep | None:
    if step.rule != "fold-empty" or not isinstance(step.after, Lit):
        return None
    return RewriteStep(step.rule, step.detail, before=step.before,
                       after=Lit(step.after.arity + 1, frozenset()))


def _drop_pushed_condition(step: RewriteStep) -> RewriteStep | None:
    if step.rule != "pushdown-select" or step.after is None:
        return None
    mutated = _replace_first(
        step.after,
        lambda n: isinstance(n, Select) and n.conds,
        lambda n: (Select(frozenset(sorted(n.conds, key=str)[1:]), n.child)
                   if len(n.conds) > 1 else n.child))
    if mutated is None:
        return None
    return RewriteStep(step.rule, step.detail, before=step.before,
                       after=mutated)


def _shift_pushed_column(step: RewriteStep) -> RewriteStep | None:
    if step.rule != "pushdown-select" or step.after is None:
        return None

    def bump(n: Select) -> Select:
        conds = sorted(n.conds, key=str)
        return Select(frozenset([_bump_col(conds[0])] + conds[1:]), n.child)

    mutated = _replace_first(
        step.after,
        lambda n: isinstance(n, Select) and n.conds,
        bump)
    if mutated is None:
        return None
    return RewriteStep(step.rule, step.detail, before=step.before,
                       after=mutated)


def _permute_restore(step: RewriteStep) -> RewriteStep | None:
    if step.rule not in ("join-reorder", "build-side"):
        return None
    if not isinstance(step.after, Project):
        return None
    swapped = _swap_two_exprs(step.after.exprs)
    if swapped is None:
        return None
    return RewriteStep(step.rule, step.detail, before=step.before,
                       after=Project(swapped, step.after.child))


def _scramble_prune(step: RewriteStep) -> RewriteStep | None:
    if step.rule != "pushdown-project" or not isinstance(step.after, Project):
        return None
    swapped = _swap_two_exprs(step.after.exprs)
    if swapped is None:
        exprs = list(step.after.exprs)
        if not exprs or not isinstance(exprs[0], Col):
            return None
        exprs[0] = Col(exprs[0].index + 1)
        swapped = tuple(exprs)
    return RewriteStep(step.rule, step.detail, before=step.before,
                       after=Project(swapped, step.after.child))


def _retarget_leaf(step: RewriteStep) -> RewriteStep | None:
    if step.rule != "join-reorder" or step.after is None:
        return None
    mutated = _replace_first(
        step.after,
        lambda n: isinstance(n, Rel) and n.name == "R",
        lambda n: Rel("U"))  # same arity, different relation
    if mutated is None:
        return None
    return RewriteStep(step.rule, step.detail, before=step.before,
                       after=mutated)


#: name -> single-step mutation operator
_STEP_MUTATORS: dict[str, Callable[[RewriteStep], RewriteStep | None]] = {
    "flip-fold-decision": _flip_fold_decision,
    "wrong-arity-empty": _wrong_arity_empty,
    "drop-pushed-condition": _drop_pushed_condition,
    "shift-pushed-column": _shift_pushed_column,
    "scramble-prune": _scramble_prune,
    "permute-restore": _permute_restore,
    "retarget-leaf": _retarget_leaf,
}


# ---------------------------------------------------------------------------
# Harness
# ---------------------------------------------------------------------------

@dataclass(frozen=True, slots=True)
class MutationRecord:
    """One corruption trial: what was injected, what the validator said."""

    operator: str
    rule: str             # rule of the corrupted step ("" for run-level)
    step_index: int | None
    caught: bool
    codes: tuple[str, ...]
    detail: str

    def __str__(self) -> str:
        verdict = "caught" if self.caught else "MISSED"
        codes = ",".join(self.codes) or "-"
        return (f"{self.operator} on {self.rule or 'run'}: {verdict} "
                f"({codes})")


@dataclass
class MutationReport:
    """Aggregate outcome of one harness run."""

    seed: int
    records: list[MutationRecord]

    @property
    def total(self) -> int:
        return len(self.records)

    @property
    def caught(self) -> int:
        return sum(1 for r in self.records if r.caught)

    @property
    def catch_rate(self) -> float:
        return self.caught / self.total if self.records else 1.0

    def missed(self) -> list[MutationRecord]:
        return [r for r in self.records if not r.caught]

    def render(self) -> str:
        """Markdown artifact: per-operator table plus the headline rate."""
        by_op: dict[str, list[MutationRecord]] = {}
        for rec in self.records:
            by_op.setdefault(rec.operator, []).append(rec)
        lines = [
            "# Rewrite-mutation harness",
            "",
            f"Seed {self.seed}: {self.total} corruption trials, "
            f"{self.caught} caught "
            f"({self.catch_rate:.0%} catch rate).",
            "",
            "| operator | trials | caught | diagnostic codes |",
            "|---|---|---|---|",
        ]
        for name in sorted(by_op):
            recs = by_op[name]
            codes = sorted({c for r in recs for c in r.codes})
            lines.append(
                f"| {name} | {len(recs)} | "
                f"{sum(1 for r in recs if r.caught)} | "
                f"{', '.join(codes) or '-'} |")
        misses = self.missed()
        if misses:
            lines.append("")
            lines.append("Missed corruptions:")
            for rec in misses:
                lines.append(f"- {rec}")
        return "\n".join(lines) + "\n"


def _codes_at(diagnostics: Iterable[Diagnostic],
              path: str) -> tuple[str, ...]:
    return tuple(sorted({d.code for d in diagnostics
                         if d.is_error and d.path == path}))


def _error_codes(diagnostics: Iterable[Diagnostic]) -> tuple[str, ...]:
    return tuple(sorted({d.code for d in diagnostics if d.is_error}))


def run_mutation_harness(seed: int = 0) -> MutationReport:
    """Corrupt every applicable recorded step of every workload run with
    every mutation operator, plus one run-level plan corruption and one
    fake shared subplan per run, and validate each corrupted run."""
    records: list[MutationRecord] = []
    runs = workload_runs(seed)

    for original, outcome in runs:
        steps = list(outcome.steps)
        # step-level corruptions
        for index, step in enumerate(steps):
            for name, mutate in _STEP_MUTATORS.items():
                mutated = mutate(step)
                if mutated is None:
                    continue
                corrupted = list(steps)
                corrupted[index] = mutated
                diagnostics = validate_rewrites(
                    original, outcome.plan, corrupted, outcome.shared,
                    CATALOG)
                path = f"rewrites[{index}]"
                codes = _codes_at(diagnostics, path)
                records.append(MutationRecord(
                    operator=name, rule=step.rule, step_index=index,
                    caught=bool(codes), codes=codes,
                    detail=mutated.detail))
        # run-level corruption: the final plan gained an output column
        widened = Project(
            tuple(Col(1) for _ in range(_root_arity(outcome.plan) + 1)),
            outcome.plan)
        diagnostics = validate_rewrites(original, widened, steps,
                                        outcome.shared, CATALOG)
        codes = _error_codes(diagnostics)
        records.append(MutationRecord(
            operator="widen-root", rule="", step_index=None,
            caught="TV001" in codes, codes=codes, detail="root arity +1"))
        # run-level corruption: claim a never-occurring subplan is shared
        ghost = Lit(3, frozenset({(-1, -2, -3)}))
        diagnostics = validate_rewrites(
            original, outcome.plan, steps,
            frozenset(outcome.shared) | {ghost}, CATALOG)
        codes = _error_codes(diagnostics)
        records.append(MutationRecord(
            operator="fake-shared", rule="", step_index=None,
            caught="TV008" in codes, codes=codes,
            detail="ghost shared subplan"))
    return MutationReport(seed=seed, records=records)


def _root_arity(plan: AlgebraExpr) -> int:
    from repro.algebra.ast import arity_of
    return arity_of(plan, CATALOG)
