"""Translation validation: certify every optimizer rewrite.

The cost-based rewrite pass (:mod:`repro.engine.rewrite`) was
property-tested on sampled instances; this module *certifies* each run
statically, in the translation-validation style: every recorded
:class:`~repro.engine.rewrite.RewriteStep` carries the redex it
replaced (``before``) and its replacement (``after``), and the
validator independently discharges the rule's soundness obligation —
plus three global obligations over the whole pass.  A violation is
reported as a :class:`~repro.analysis.diagnostics.Diagnostic` with a
stable ``TV0xx`` code naming the offending rule and node:

=====  ========  ====================================================
code   severity  obligation
=====  ========  ====================================================
TV001  error     the pass changed the root arity
TV002  error     the pass introduced a relation scan the input lacked
TV003  error     root column facts are not a refinement (typeinfer)
TV004  error     a constant-/empty-fold decision does not replay
TV005  error     join-reorder column-provenance bijection failed
TV006  error     a pushdown guard or distribution shape is violated
TV007  error     a build-side swap is not neutral (wrong restore map)
TV008  error     a "shared" subplan occurs fewer than twice
TV009  error     a recorded step carries no replayable payload
TV010  info      bijection search budget exceeded; step accepted
=====  ========  ====================================================

:func:`validate_rewrites` returns the diagnostics;
:func:`check_rewrites` raises
:class:`~repro.errors.RewriteValidationError` when any has error
severity.  The checkers are deliberately *independent*
re-derivations of each rule's specification — they share only the
anti-join pattern matcher with the optimizer, never the rewrite code
they are judging.
"""

from __future__ import annotations

from collections import Counter
from itertools import permutations
from typing import (TYPE_CHECKING, Callable, Iterable, Iterator, Mapping,
                    Sequence)

from repro.algebra.ast import (
    AlgebraExpr,
    CApp,
    CConst,
    Col,
    ColExpr,
    Condition,
    Diff,
    Enumerate,
    Join,
    Lit,
    Product,
    Project,
    Rel,
    Select,
    Union,
    arity_of,
    compare_values,
    walk_algebra,
)
from repro.algebra.printer import to_algebra_text
from repro.analysis.diagnostics import ERROR, INFO, Diagnostic, has_errors
from repro.analysis.typeinfer import infer_plan_types, refinement_violations
from repro.core.schema import DatabaseSchema
from repro.errors import EvaluationError, RewriteValidationError

if TYPE_CHECKING:
    # Runtime import would close the repro.engine <-> repro.analysis
    # cycle (see _anti_join_helpers); annotations are strings here.
    from repro.engine.rewrite import RewriteStep

#: Shapes of the two lazily-imported anti-join helpers (see
#: :func:`_anti_join_helpers`).
_MatchAntiJoin = Callable[..., object]
_RebuildAntiJoin = Callable[..., object]


def _anti_join_helpers() -> "tuple[_MatchAntiJoin, _RebuildAntiJoin]":
    """The only optimizer code the validator shares: the anti-join
    structural pattern (see :mod:`repro.engine.optimizer`).  Imported
    lazily because ``repro.engine`` eagerly imports the rewrite pass,
    which imports this module back — a top-level import here would
    close that cycle."""
    from repro.engine.optimizer import match_anti_join, rebuild_anti_join
    return match_anti_join, rebuild_anti_join

__all__ = [
    "check_rewrites",
    "refinement_diagnostics",
    "validate_rewrites",
]

#: Bound on the permutations tried when matching duplicated leaves in a
#: reordered join region.  Exceeding it yields TV010 (info), never a
#: false alarm.
BIJECTION_BUDGET = 720


def _subject(node: AlgebraExpr | None, limit: int = 120) -> str:
    if node is None:
        return ""
    text = to_algebra_text(node)
    return text if len(text) <= limit else text[:limit - 3] + "..."


def _is_empty(node: AlgebraExpr) -> bool:
    return isinstance(node, Lit) and not node.rows


def _statically_false(conds: Iterable[Condition]) -> bool:
    return any(
        isinstance(c.left, CConst) and isinstance(c.right, CConst)
        and not compare_values(c.op, c.left.value, c.right.value)
        for c in conds)


def _shift(expr: ColExpr, mapping: Callable[[int], int]) -> ColExpr:
    """Remap column coordinates in a ColExpr (independent re-derivation
    of the optimizer's shift, kept local on purpose)."""
    if isinstance(expr, Col):
        return Col(mapping(expr.index))
    if isinstance(expr, CConst):
        return expr
    if not isinstance(expr, CApp):
        raise TypeError(f"not a column expression: {expr!r}")
    return CApp(expr.name, tuple(_shift(a, mapping) for a in expr.args))


def _shift_cond(cond: Condition,
                mapping: Callable[[int], int]) -> Condition:
    return Condition(_shift(cond.left, mapping), cond.op,
                     _shift(cond.right, mapping))


# ---------------------------------------------------------------------------
# Per-rule obligations
# ---------------------------------------------------------------------------

def _check_fold_const(step: RewriteStep) -> str | None:
    data = getattr(step, "data", ())
    if len(data) != 2:
        return "no recorded (condition, decision) payload"
    cond, decision = data
    if not isinstance(cond, Condition):
        return f"payload is not a condition: {cond!r}"
    if not (isinstance(cond.left, CConst) and isinstance(cond.right, CConst)):
        return f"folded condition {cond} is not constant-vs-constant"
    actual = compare_values(cond.op, cond.left.value, cond.right.value)
    if actual is not bool(decision):
        return (f"recorded decision {decision} for {cond} does not replay "
                f"(evaluates to {actual})")
    return None


def _check_fold_empty(before: AlgebraExpr, after: AlgebraExpr,
                      catalog: Mapping[str, int]) -> str | None:
    if isinstance(before, Select):
        if not (_is_empty(before.child) or _statically_false(before.conds)):
            return "selection input is not empty and no condition is false"
        want = Lit(arity_of(before.child, catalog), frozenset())
        return None if after == want else "replacement is not the empty plan"
    if isinstance(before, Project):
        if not _is_empty(before.child):
            return "projection input is not empty"
        want = Lit(len(before.exprs), frozenset())
        return None if after == want else "replacement is not the empty plan"
    if isinstance(before, (Join, Product)):
        falsified = (isinstance(before, Join)
                     and _statically_false(before.conds))
        if not (_is_empty(before.left) or _is_empty(before.right)
                or falsified):
            return "neither join input is empty and no condition is false"
        width = (arity_of(before.left, catalog)
                 + arity_of(before.right, catalog))
        want = Lit(width, frozenset())
        return None if after == want else "replacement is not the empty plan"
    if isinstance(before, Union):
        if _is_empty(before.left) and after == before.right:
            return None
        if _is_empty(before.right) and after == before.left:
            return None
        return "union fold does not return the non-empty side"
    if isinstance(before, Diff):
        match_anti_join, _ = _anti_join_helpers()
        anti = match_anti_join(before)
        if anti is not None:
            conds, context, excluded = anti
            if after == context and (_is_empty(excluded)
                                     or _statically_false(conds)
                                     or _is_empty(context)):
                return None
        if _is_empty(before.right) and after == before.left:
            return None
        if _is_empty(before.left) and after == before.left:
            return None
        return "difference fold keeps the wrong side"
    if isinstance(before, Enumerate):
        if not _is_empty(before.child):
            return "enumeration input is not empty"
        want = Lit(arity_of(before.child, catalog) + before.out_count,
                   frozenset())
        return None if after == want else "replacement is not the empty plan"
    return f"unrecognized empty-fold redex {type(before).__name__}"


def _check_select_pushdown(before: AlgebraExpr, after: AlgebraExpr,
                           catalog: Mapping[str, int]) -> str | None:
    if isinstance(before, Select):
        child = before.child
        conds = before.conds
        if isinstance(child, Union):
            want = Union(Select(conds, child.left),
                         Select(conds, child.right))
            return (None if after == want
                    else "selection did not distribute over both union "
                         "branches")
        if isinstance(child, Diff):
            match_anti_join, rebuild_anti_join = _anti_join_helpers()
            anti = match_anti_join(child)
            if anti is not None:
                aconds, context, excluded = anti
                want = rebuild_anti_join(aconds, Select(conds, context),
                                         excluded,
                                         arity_of(context, catalog))
                return (None if after == want
                        else "selection did not land on the anti-join "
                             "context")
            want = Diff(Select(conds, child.left), child.right)
            return (None if after == want
                    else "selection must move to the difference's left "
                         "input only")
        if isinstance(child, Enumerate):
            if isinstance(after, Select):
                outside, enum = after.conds, after.child
            else:
                outside, enum = frozenset(), after
            if not isinstance(enum, Enumerate) or (
                    enum.enumerator, enum.inputs, enum.out_count) != (
                    child.enumerator, child.inputs, child.out_count):
                return "enumerate node changed across the pushdown"
            inner = enum.child
            if not isinstance(inner, Select) or inner.child != child.child:
                return "pushed selection does not sit on the enumerate input"
            inside = inner.conds
            inner_arity = arity_of(child.child, catalog)
            for c in inside:
                if any(i > inner_arity for i in c.columns()):
                    return (f"guard violated: pushed condition {c} "
                            "references enumerator output columns")
            if inside & outside:
                return "a condition appears both inside and outside"
            if (inside | outside) != conds:
                return "condition set changed across the pushdown"
            return None
        return "unrecognized selection-pushdown redex"
    if isinstance(before, Join):
        left, right = before.left, before.right
        left_arity = arity_of(left, catalog)
        right_arity = arity_of(right, catalog)
        if isinstance(after, Join):
            keep, new_left, new_right = after.conds, after.left, after.right
        elif isinstance(after, Product):
            keep, new_left, new_right = frozenset(), after.left, after.right
        else:
            return "join pushdown must produce a join or a product"

        def pushed(new: AlgebraExpr,
                   base: AlgebraExpr) -> frozenset[Condition] | None:
            if new == base:
                return frozenset()
            if isinstance(new, Select) and new.child == base:
                return new.conds
            return None

        push_left = pushed(new_left, left)
        push_right = pushed(new_right, right)
        if push_left is None or push_right is None:
            return "join inputs changed beyond adding a selection"
        for c in push_left:
            if any(i > left_arity for i in c.columns()):
                return (f"guard violated: left-pushed condition {c} "
                        "references right columns")
        for c in push_right:
            if any(i > right_arity for i in c.columns()):
                return (f"guard violated: right-pushed condition {c} is "
                        "out of range")
        unshift = (lambda i, off=left_arity: i + off)
        push_right_orig = frozenset(_shift_cond(c, unshift)
                                    for c in push_right)
        if keep | push_left | push_right_orig != before.conds:
            return "condition set changed across the pushdown"
        return None
    return f"unrecognized selection-pushdown redex {type(before).__name__}"


def _check_project_pushdown(before: AlgebraExpr, after: AlgebraExpr,
                            catalog: Mapping[str, int]) -> str | None:
    if not isinstance(before, Project):
        return f"unrecognized projection-pushdown redex {type(before).__name__}"
    child = before.child
    if isinstance(child, Union):
        want = Union(Project(before.exprs, child.left),
                     Project(before.exprs, child.right))
        return (None if after == want
                else "projection did not distribute over both union "
                     "branches")
    if isinstance(child, (Join, Product)):
        if not isinstance(after, Project) or not isinstance(
                after.child, type(child)):
            return "pruning must preserve the project-over-join shape"
        new_child = after.child
        left_arity = arity_of(child.left, catalog)
        right_arity = arity_of(child.right, catalog)

        def kept(new: AlgebraExpr, base: AlgebraExpr, offset: int,
                 width: int) -> list[int] | None:
            if new == base:
                return list(range(offset + 1, offset + width + 1))
            if (isinstance(new, Project) and new.child == base
                    and all(isinstance(e, Col) for e in new.exprs)):
                idxs = [e.index for e in new.exprs]
                if (idxs == sorted(idxs) and len(set(idxs)) == len(idxs)
                        and all(1 <= i <= width for i in idxs)):
                    return [offset + i for i in idxs]
            return None

        keep_left = kept(new_child.left, child.left, 0, left_arity)
        keep_right = kept(new_child.right, child.right, left_arity,
                          right_arity)
        if keep_left is None or keep_right is None:
            return ("pruned children must keep an increasing subset of "
                    "their columns")
        mapping = {col: pos for pos, col in
                   enumerate(keep_left + keep_right, start=1)}
        try:
            want_exprs = tuple(_shift(e, mapping.__getitem__)
                               for e in before.exprs)
            old_conds = child.conds if isinstance(child, Join) \
                else frozenset()
            want_conds = frozenset(_shift_cond(c, mapping.__getitem__)
                                   for c in old_conds)
        except KeyError as missing:
            return (f"pruned column @{missing.args[0]} is still referenced "
                    "by the projection or the join conditions")
        if after.exprs != want_exprs:
            return "projection expressions were not remapped consistently"
        new_conds = new_child.conds if isinstance(new_child, Join) \
            else frozenset()
        if new_conds != want_conds:
            return "join conditions were not remapped consistently"
        return None
    return "unrecognized projection-pushdown redex"


def _region_projection(n: AlgebraExpr) -> bool:
    return (isinstance(n, Project)
            and all(isinstance(e, Col) for e in n.exprs)
            and isinstance(n.child, (Join, Product, Project)))


def _flatten(
        node: AlgebraExpr, catalog: Mapping[str, int],
) -> tuple[list[AlgebraExpr], list[Condition], tuple[int, ...]]:
    """Flatten a Join/Product region: (leaves, conditions in region
    coordinates, output columns as region coordinates).  Mirrors the
    optimizer's region semantics but is re-derived here.  ``Select``
    nodes are transparent — their conditions join the region's pool —
    because the greedy order attaches start-leaf conditions as a
    selection while the original region held them in join nodes."""
    leaves: list[AlgebraExpr] = []
    conds: list[Condition] = []
    next_col = 0

    def walk(n: AlgebraExpr) -> tuple[int, ...]:
        nonlocal next_col
        if isinstance(n, (Join, Product)):
            out = walk(n.left) + walk(n.right)
            if isinstance(n, Join):
                get = (lambda i, cols=out: cols[i - 1])
                conds.extend(_shift_cond(c, get) for c in n.conds)
            return out
        if isinstance(n, Select):
            out = walk(n.child)
            get = (lambda i, cols=out: cols[i - 1])
            conds.extend(_shift_cond(c, get) for c in n.conds)
            return out
        if _region_projection(n):
            out = walk(n.child)
            return tuple(out[e.index - 1] for e in n.exprs)
        leaves.append(n)
        width = arity_of(n, catalog)
        out = tuple(range(next_col + 1, next_col + width + 1))
        next_col += width
        return out

    outcols = walk(node)
    return leaves, conds, outcols


def _check_reorder(before: AlgebraExpr, after: AlgebraExpr,
                   catalog: Mapping[str, int]) -> str | None:
    b_leaves, b_conds, b_out = _flatten(before, catalog)
    a_leaves, a_conds, a_out = _flatten(after, catalog)
    if len(b_leaves) != len(a_leaves):
        return (f"region leaf count changed: {len(b_leaves)} -> "
                f"{len(a_leaves)}")
    if Counter(b_leaves) != Counter(a_leaves):
        return "region leaf multiset changed"
    groups: dict[AlgebraExpr, list[int]] = {}
    for idx, leaf in enumerate(a_leaves):
        groups.setdefault(leaf, []).append(idx)

    b_arities = [arity_of(leaf, catalog) for leaf in b_leaves]
    a_arities = [arity_of(leaf, catalog) for leaf in a_leaves]
    b_starts, a_starts = [], []
    off = 0
    for a in b_arities:
        b_starts.append(off)
        off += a
    off = 0
    for a in a_arities:
        a_starts.append(off)
        off += a

    def owner(col: int) -> int:
        for idx in range(len(b_leaves)):
            if b_starts[idx] < col <= b_starts[idx] + b_arities[idx]:
                return idx
        raise AssertionError(f"column @{col} outside region")

    a_cond_set = frozenset(a_conds)
    # enumerate assignments: for each group of equal leaves, a
    # permutation of the after-side indices
    group_items = [(leaf, [i for i, l in enumerate(b_leaves) if l == leaf],
                    positions)
                   for leaf, positions in groups.items()]
    budget = BIJECTION_BUDGET

    def assignments(i: int,
                    pi: dict[int, int]) -> Iterator[dict[int, int]]:
        nonlocal budget
        if budget <= 0:
            return
        if i == len(group_items):
            yield dict(pi)
            return
        _leaf, b_positions, a_positions = group_items[i]
        for perm in permutations(a_positions):
            budget -= 1
            if budget < 0:
                return
            for b_idx, a_idx in zip(b_positions, perm):
                pi[b_idx] = a_idx
            yield from assignments(i + 1, pi)

    for pi in assignments(0, {}):

        def remap(col: int, pi: dict[int, int] = pi) -> int:
            b_idx = owner(col)
            return a_starts[pi[b_idx]] + (col - b_starts[b_idx])

        try:
            mapped_conds = frozenset(_shift_cond(c, remap) for c in b_conds)
            mapped_out = tuple(remap(g) for g in b_out)
        except (KeyError, AssertionError):
            continue
        if mapped_conds == a_cond_set and mapped_out == a_out:
            return None
    if budget <= 0:
        return "__budget__"
    return ("no leaf bijection maps the region's conditions and output "
            "columns onto the reordered plan")


def _check_build_side(before: AlgebraExpr, after: AlgebraExpr,
                      catalog: Mapping[str, int]) -> str | None:
    if not isinstance(before, Join):
        return "build-side redex is not a join"
    left_arity = arity_of(before.left, catalog)
    right_arity = arity_of(before.right, catalog)

    def remap(i: int) -> int:
        return i + right_arity if i <= left_arity else i - left_arity

    want_conds = frozenset(_shift_cond(c, remap) for c in before.conds)
    restore = tuple(
        [Col(right_arity + i) for i in range(1, left_arity + 1)]
        + [Col(i) for i in range(1, right_arity + 1)])
    want = Project(restore,
                   Join(want_conds, before.right, before.left))
    if after != want:
        return ("swap is not neutral: expected the restoring projection "
                "over the condition-remapped swapped join")
    return None


# ---------------------------------------------------------------------------
# Driver
# ---------------------------------------------------------------------------

_PAYLOAD_RULES = {"fold-empty", "pushdown-select", "pushdown-project",
                  "join-reorder", "build-side"}

_CHECKERS = {
    "fold-empty": ("TV004", _check_fold_empty),
    "pushdown-select": ("TV006", _check_select_pushdown),
    "pushdown-project": ("TV006", _check_project_pushdown),
    "join-reorder": ("TV005", _check_reorder),
    "build-side": ("TV007", _check_build_side),
}


def refinement_diagnostics(before: AlgebraExpr, after: AlgebraExpr,
                           catalog: Mapping[str, int],
                           schema: DatabaseSchema | None = None,
                           path: str = "plan") -> list[Diagnostic]:
    """The TV003 obligation alone: ``after``'s root column facts must
    refine ``before``'s.  Used for whole phases (the simplifier) whose
    individual rewrites are not step-recorded."""
    before_types = infer_plan_types(before, catalog, schema)
    after_types = infer_plan_types(after, catalog, schema)
    problems = refinement_violations(after_types.root, before_types.root)
    if not problems:
        return []
    return [Diagnostic(
        code="TV003", severity=ERROR,
        message="root column facts regressed: " + "; ".join(problems),
        path=path, subject=_subject(after))]


def validate_rewrites(original: AlgebraExpr, plan: AlgebraExpr,
                      steps: Sequence[RewriteStep],
                      shared: Iterable[AlgebraExpr],
                      catalog: Mapping[str, int],
                      schema: DatabaseSchema | None = None) -> list[Diagnostic]:
    """Certify one optimizer run: ``original`` is the input plan,
    ``plan``/``steps``/``shared`` the recorded outcome.  Returns every
    violated obligation as a diagnostic (empty = certified)."""
    diagnostics: list[Diagnostic] = []
    try:
        before_arity = arity_of(original, catalog)
        after_arity = arity_of(plan, catalog)
    except EvaluationError as err:
        return [Diagnostic(
            code="TV009", severity=ERROR,
            message=f"plan is not typable, cannot validate: {err}",
            path="plan")]
    if before_arity != after_arity:
        diagnostics.append(Diagnostic(
            code="TV001", severity=ERROR,
            message=f"rewrite pass changed the root arity: "
                    f"{before_arity} -> {after_arity}",
            path="plan", subject=_subject(plan)))
    before_rels = {n.name for n in walk_algebra(original)
                   if isinstance(n, Rel)}
    after_rels = {n.name for n in walk_algebra(plan) if isinstance(n, Rel)}
    introduced = sorted(after_rels - before_rels)
    if introduced:
        diagnostics.append(Diagnostic(
            code="TV002", severity=ERROR,
            message=f"rewrite pass introduced relation scan(s) the input "
                    f"never read: {', '.join(introduced)}",
            path="plan"))
    diagnostics.extend(refinement_diagnostics(
        original, plan, catalog, schema, path="plan"))

    for index, step in enumerate(steps):
        rule = getattr(step, "rule", "")
        path = f"rewrites[{index}]"
        if rule == "fold-const":
            problem = _check_fold_const(step)
            if problem is not None:
                diagnostics.append(Diagnostic(
                    code="TV004", severity=ERROR,
                    message=f"{rule} rewrite failed its obligation: "
                            f"{problem}",
                    path=path, subject=str(step)))
            continue
        if rule == "cse":
            continue  # certified via the shared-subplan check below
        if rule not in _CHECKERS:
            diagnostics.append(Diagnostic(
                code="TV009", severity=ERROR,
                message=f"unknown rewrite rule {rule!r}: no obligation "
                        "to discharge",
                path=path, subject=str(step)))
            continue
        before = getattr(step, "before", None)
        after = getattr(step, "after", None)
        if before is None or after is None:
            diagnostics.append(Diagnostic(
                code="TV009", severity=ERROR,
                message=f"{rule} rewrite recorded no before/after redex, "
                        "cannot replay its obligation",
                path=path, subject=str(step)))
            continue
        code, checker = _CHECKERS[rule]
        try:
            problem = checker(before, after, catalog)
        except EvaluationError as err:
            problem = f"redex is not typable: {err}"
        if problem == "__budget__":
            diagnostics.append(Diagnostic(
                code="TV010", severity=INFO,
                message=f"{rule} bijection search exceeded its budget; "
                        "step accepted without a certificate",
                path=path, subject=_subject(before)))
        elif problem is not None:
            diagnostics.append(Diagnostic(
                code=code, severity=ERROR,
                message=f"{rule} rewrite failed its obligation: {problem}",
                path=path, subject=_subject(before)))

    for sub in shared:
        occurrences = sum(1 for n in walk_algebra(plan) if n == sub)
        if occurrences < 2:
            diagnostics.append(Diagnostic(
                code="TV008", severity=ERROR,
                message=f"cse rewrite failed its obligation: subplan "
                        f"marked shared occurs {occurrences} time(s) in "
                        "the final plan",
                path="plan.shared", subject=_subject(sub)))
    return diagnostics


def check_rewrites(original: AlgebraExpr, plan: AlgebraExpr,
                   steps: Sequence[RewriteStep],
                   shared: Iterable[AlgebraExpr],
                   catalog: Mapping[str, int],
                   schema: DatabaseSchema | None = None,
                   phase: str = "optimize") -> None:
    """Raise :class:`~repro.errors.RewriteValidationError` when any
    validation obligation fails with error severity."""
    diagnostics = validate_rewrites(original, plan, steps, shared, catalog,
                                    schema)
    if has_errors(diagnostics):
        raise RewriteValidationError(
            f"translation validation failed ({phase} phase)",
            diagnostics=[d for d in diagnostics if d.is_error])
