"""The algebra plan sanitizer: static schema/arity inference over plans.

``sanitize_plan`` runs a bottom-up arity inference over an
:class:`~repro.algebra.ast.AlgebraExpr` and reports every structural
violation as a :class:`~repro.analysis.diagnostics.Diagnostic` —
unlike :func:`repro.algebra.ast.arity_of`, which raises on the first
problem, the sanitizer recovers (an unknown arity propagates as "skip
the dependent checks") and collects all of them:

=======  ==========================================================
code     finding
=======  ==========================================================
PL001    projection expression refers to an out-of-range column
PL002    union/difference of mismatched arities
PL003    selection/join condition refers to a missing column
PL004    unknown relation name in the plan
PL005    enumerate input refers to an out-of-range column
PL006    plan arity differs from the declared/expected arity
=======  ==========================================================

``check_plan`` raises :class:`~repro.errors.PlanInvariantError` when
anything is found; the translation pipeline calls it after every phase
and the simplifier after every rewrite round when plan verification is
on.  Verification follows the observability subsystem's zero-overhead
pattern: a module-level default (off) that the test suite switches on
globally via :func:`set_verify_plans`, plus a per-call override on
``translate_query(..., verify_plans=...)``.
"""

from __future__ import annotations

from typing import Mapping

from repro.algebra.ast import (
    AdomK,
    AlgebraExpr,
    Diff,
    Enumerate,
    Join,
    Lit,
    Params,
    Product,
    Project,
    Rel,
    Select,
    Union,
    colexpr_columns,
)
from repro.analysis.diagnostics import ERROR, Diagnostic
from repro.errors import PlanInvariantError

__all__ = [
    "sanitize_plan",
    "check_plan",
    "set_verify_plans",
    "verify_plans_enabled",
]

#: Module-wide default for plan verification.  Off in production (zero
#: overhead: the pipeline's only cost is one boolean test); switched on
#: globally by the test suite's conftest.
_VERIFY_PLANS_DEFAULT = False


def set_verify_plans(enabled: bool) -> bool:
    """Set the module-wide verification default; returns the previous
    value so callers can restore it."""
    global _VERIFY_PLANS_DEFAULT
    previous = _VERIFY_PLANS_DEFAULT
    _VERIFY_PLANS_DEFAULT = bool(enabled)
    return previous


def verify_plans_enabled(override: bool | None = None) -> bool:
    """Resolve a per-call override (None means "use the default")."""
    if override is None:
        return _VERIFY_PLANS_DEFAULT
    return bool(override)


def _diag(code: str, message: str, path: str, node: AlgebraExpr,
          suggestion: str = "") -> Diagnostic:
    return Diagnostic(code, ERROR, message, path=path, subject=str(node),
                      suggestion=suggestion)


def _infer(expr: AlgebraExpr, catalog: Mapping[str, int],
           out: list[Diagnostic], path: str) -> int | None:
    """Bottom-up arity inference with error recovery.

    Returns the node's output arity, or None when it cannot be
    determined (the violation is already recorded in ``out``; checks
    that depend on the unknown arity are skipped rather than cascading).
    """
    if isinstance(expr, Rel):
        if expr.name not in catalog:
            known = ", ".join(sorted(catalog)) or "(none)"
            out.append(_diag("PL004", f"unknown relation {expr.name!r} in plan",
                             path, expr,
                             suggestion=f"catalog declares: {known}"))
            return None
        return catalog[expr.name]
    if isinstance(expr, Lit):
        return expr.arity
    if isinstance(expr, AdomK):
        return 1
    if isinstance(expr, Params):
        return expr.arity
    if isinstance(expr, Enumerate):
        child = _infer(expr.child, catalog, out, f"{path}.child")
        if child is None:
            return None
        for e in expr.inputs:
            bad = [i for i in colexpr_columns(e) if i > child or i < 1]
            if bad:
                out.append(_diag(
                    "PL005",
                    f"enumerate input {e} refers to @{bad[0]} but child "
                    f"arity is {child}",
                    path, expr))
        return child + expr.out_count
    if isinstance(expr, Project):
        child = _infer(expr.child, catalog, out, f"{path}.child")
        if child is not None:
            for e in expr.exprs:
                bad = [i for i in colexpr_columns(e) if i > child or i < 1]
                if bad:
                    out.append(_diag(
                        "PL001",
                        f"projection expression {e} refers to @{bad[0]} but "
                        f"child arity is {child}",
                        path, expr,
                        suggestion=f"valid columns are @1..@{child}"))
        return len(expr.exprs)
    if isinstance(expr, Select):
        child = _infer(expr.child, catalog, out, f"{path}.child")
        if child is None:
            return None
        for cond in expr.conds:
            bad = [i for i in cond.columns() if i > child or i < 1]
            if bad:
                out.append(_diag(
                    "PL003",
                    f"selection condition {cond} refers to @{bad[0]} but "
                    f"input arity is {child}",
                    path, expr,
                    suggestion=f"valid columns are @1..@{child}"))
        return child
    if isinstance(expr, Join):
        left = _infer(expr.left, catalog, out, f"{path}.left")
        right = _infer(expr.right, catalog, out, f"{path}.right")
        if left is None or right is None:
            return None
        total = left + right
        for cond in expr.conds:
            bad = [i for i in cond.columns() if i > total or i < 1]
            if bad:
                out.append(_diag(
                    "PL003",
                    f"join condition {cond} refers to @{bad[0]} but joined "
                    f"arity is {total}",
                    path, expr,
                    suggestion=f"valid columns are @1..@{total}"))
        return total
    if isinstance(expr, (Union, Diff)):
        op = "union" if isinstance(expr, Union) else "difference"
        left = _infer(expr.left, catalog, out, f"{path}.left")
        right = _infer(expr.right, catalog, out, f"{path}.right")
        if left is None or right is None:
            return left if right is None else right
        if left != right:
            out.append(_diag(
                "PL002",
                f"{op} of mismatched arities: left is {left}, right is "
                f"{right}",
                path, expr,
                suggestion="project both operands to a common column list"))
            return None
        return left
    if isinstance(expr, Product):
        left = _infer(expr.left, catalog, out, f"{path}.left")
        right = _infer(expr.right, catalog, out, f"{path}.right")
        if left is None or right is None:
            return None
        return left + right
    out.append(_diag("PL004", f"not an algebra expression: {expr!r}",
                     path, expr))
    return None


def sanitize_plan(expr: AlgebraExpr, catalog: Mapping[str, int],
                  expected_arity: int | None = None,
                  root: str = "plan") -> list[Diagnostic]:
    """All structural violations in ``expr``; empty means the plan is
    well-formed (and, when ``expected_arity`` is given, produces rows of
    exactly that width)."""
    out: list[Diagnostic] = []
    arity = _infer(expr, catalog, out, root)
    if (expected_arity is not None and arity is not None
            and arity != expected_arity):
        out.append(_diag(
            "PL006",
            f"plan produces rows of arity {arity}, expected "
            f"{expected_arity}",
            root, expr,
            suggestion="a rewrite dropped or duplicated an output column"))
    return out


def check_plan(expr: AlgebraExpr, catalog: Mapping[str, int],
               phase: str = "",
               expected_arity: int | None = None) -> None:
    """Raise :class:`PlanInvariantError` if ``expr`` is malformed.

    ``phase`` names the pipeline stage (or simplifier round) that
    produced the plan, so the error pinpoints the culprit.
    """
    diagnostics = sanitize_plan(expr, catalog, expected_arity)
    if diagnostics:
        where = f" after {phase}" if phase else ""
        raise PlanInvariantError(f"invalid algebra plan{where}",
                                 diagnostics=diagnostics)
