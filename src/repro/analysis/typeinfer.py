"""Abstract interpretation over the extended algebra: per-column facts.

The paper's safety theorem says every em-allowed query translates to a
plan whose answer is a *finite* relation over values reachable from the
active domain by at most ``k`` function applications (the ``term_k``
closure of Section 5).  This module makes that bound — and everything
else a plan's shape implies about its columns — explicit: a bottom-up
abstract interpreter assigns each plan node a :class:`NodeFacts` value
carrying, per output column, a :class:`ColumnFact` lattice element:

* ``vtype`` — the value type, from relation schemas and declared
  scalar-function signatures ("any" = unknown top, "never" = the empty
  bottom of statically unsatisfiable columns);
* ``nullable`` — whether the column can hold
  :data:`~repro.data.interpretation.UNDEFINED` *during projection
  construction* (rows carrying UNDEFINED are dropped before they flow
  between operators, so nullability here tracks which function columns
  force that per-row scan and which comparisons can be vacuous);
* ``depth`` — how many scalar-function applications separate the
  column from stored values: the column's values lie in
  ``term_depth(adom(I) ∪ consts)``, the plan-level finiteness
  certificate (:class:`FinitenessCertificate`);
* ``const``/``is_const`` — the column is pinned to one value by a
  literal or an equality selection;
* ``sources`` — column provenance: the stored ``(relation, column)``
  coordinates this column's values are drawn from.

Key facts (distinctness) ride along per node: a key is a column set
whose values determine the whole row; the full column set is always a
key under set semantics and is kept implicit.

Inference never raises on type problems — it *records* them as
:class:`~repro.analysis.diagnostics.Diagnostic` values with stable
``TY0xx`` codes:

=====  ========  ====================================================
code   severity  meaning
=====  ========  ====================================================
TY001  warning   scalar function is not declared in the schema
TY002  error     function applied with the wrong number of arguments
TY003  warning   comparison of disjoint types can never hold
TY004  info      ordering compares a possibly-UNDEFINED operand
TY005  info      const-vs-const comparison left in the plan
TY006  warning   function argument type conflicts with the signature
=====  ========  ====================================================

The facts feed three consumers: the ``repro typecheck`` CLI, the
typed-facts lines of EXPLAIN ANALYZE, and the translation validator
(:mod:`repro.analysis.validate`), whose root-refinement obligation
compares the facts of a plan before and after the optimizer's rewrite
pass.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Hashable, Iterable, Mapping

from repro.algebra.ast import (
    AdomK,
    AlgebraExpr,
    CApp,
    CConst,
    Col,
    ColExpr,
    Condition,
    Diff,
    Enumerate,
    Join,
    Lit,
    Params,
    Product,
    Project,
    Rel,
    Select,
    Union,
    arity_of,
)
from repro.analysis.diagnostics import ERROR, INFO, WARNING, Diagnostic
from repro.core.schema import DatabaseSchema
from repro.data.interpretation import UNDEFINED

__all__ = [
    "TYPE_ANY",
    "TYPE_NEVER",
    "ColumnFact",
    "FinitenessCertificate",
    "NodeFacts",
    "PlanTypes",
    "infer_plan_types",
    "join_types",
    "meet_types",
    "refinement_violations",
    "render_typed_plan",
    "value_type",
]

#: Lattice top: nothing is known about the value type.
TYPE_ANY = "any"
#: Lattice bottom: the column can hold no value (empty relation or a
#: statically unsatisfiable conjunction of conditions).
TYPE_NEVER = "never"

#: Cap on the number of non-trivial keys tracked per node.
MAX_KEYS = 12

#: Comparison operators with an order semantics (UNDEFINED never passes).
_ORDERINGS = frozenset({"<", "<=", ">", ">="})


def value_type(value: Hashable) -> str:
    """The lattice element describing one concrete value."""
    if value is UNDEFINED:
        return TYPE_ANY
    return type(value).__name__


def join_types(a: str, b: str) -> str:
    """Least upper bound: the type of a value drawn from ``a`` or ``b``."""
    if a == TYPE_NEVER:
        return b
    if b == TYPE_NEVER:
        return a
    if a == b:
        return a
    return TYPE_ANY


def meet_types(a: str, b: str) -> str:
    """Greatest lower bound: the type of a value in both ``a`` and ``b``."""
    if a == TYPE_ANY:
        return b
    if b == TYPE_ANY:
        return a
    if a == b:
        return a
    return TYPE_NEVER


@dataclass(frozen=True, slots=True)
class ColumnFact:
    """Everything inferred about one output column of a plan node."""

    vtype: str = TYPE_ANY
    nullable: bool = False
    depth: int = 0
    const: Hashable = None
    is_const: bool = False
    sources: frozenset[tuple[str, int]] = frozenset()

    def merge(self, other: "ColumnFact") -> "ColumnFact":
        """Least upper bound (union of the two value sets).

        A ``never`` column is the lattice bottom (it holds no values),
        so merging it returns the other fact unchanged.
        """
        if self.vtype == TYPE_NEVER:
            return other
        if other.vtype == TYPE_NEVER:
            return self
        both_const = (self.is_const and other.is_const
                      and self.const == other.const)
        return ColumnFact(
            vtype=join_types(self.vtype, other.vtype),
            nullable=self.nullable or other.nullable,
            depth=max(self.depth, other.depth),
            const=self.const if both_const else None,
            is_const=both_const,
            sources=self.sources | other.sources,
        )

    def describe(self) -> str:
        text = self.vtype
        if self.nullable:
            text += "?"
        if self.is_const:
            text += f"={self.const!r}"
        return text


@dataclass(frozen=True, slots=True)
class FinitenessCertificate:
    """The plan-level finiteness bound: every output value lies in the
    ``term_k`` closure of the active domain plus the plan's constants,
    where ``k`` is the maximum per-column function depth."""

    k: int
    per_column: tuple[int, ...]

    def __str__(self) -> str:
        if self.k == 0:
            return "adom(I) + consts"
        return f"term_{self.k}(adom(I) + consts)"


@dataclass(frozen=True, slots=True)
class NodeFacts:
    """The inferred facts of one plan node: per-column lattice elements
    plus the node's non-trivial keys (the full column set is always a
    key under set semantics and stays implicit)."""

    arity: int
    columns: tuple[ColumnFact, ...]
    keys: frozenset[frozenset[int]] = frozenset()

    @property
    def max_depth(self) -> int:
        return max((c.depth for c in self.columns), default=0)

    def certificate(self) -> FinitenessCertificate:
        return FinitenessCertificate(
            self.max_depth, tuple(c.depth for c in self.columns))

    def describe(self) -> str:
        """One-line rendering for EXPLAIN / typecheck output."""
        parts = ["[" + ", ".join(c.describe() for c in self.columns) + "]"]
        if self.keys:
            rendered = sorted(
                "{" + ",".join(str(i) for i in sorted(k)) + "}"
                for k in self.keys)
            parts.append("key" + "".join(rendered))
        if self.max_depth:
            parts.append(str(self.certificate()))
        return " ".join(parts)


@dataclass
class PlanTypes:
    """Result of :func:`infer_plan_types`."""

    root: NodeFacts
    facts: dict[AlgebraExpr, NodeFacts]
    diagnostics: list[Diagnostic]

    def facts_of(self, node: AlgebraExpr) -> NodeFacts:
        return self.facts[node]


def refinement_violations(after: NodeFacts, before: NodeFacts) -> list[str]:
    """How ``after`` fails to refine ``before`` (empty when it does).

    A semantics-preserving rewrite may only *narrow* what is known about
    the root: types stay equal or become ``never``, nullability may only
    be cleared, function depth may only shrink, provenance may only lose
    sources, and a pinned constant stays pinned.
    """
    problems: list[str] = []
    if after.arity != before.arity:
        return [f"arity changed from {before.arity} to {after.arity}"]
    for i, (a, b) in enumerate(zip(after.columns, before.columns), start=1):
        if a.vtype == TYPE_NEVER:
            continue  # bottom refines everything
        if b.vtype != TYPE_ANY and a.vtype != b.vtype:
            problems.append(
                f"column @{i} type widened from {b.vtype} to {a.vtype}")
        if a.nullable and not b.nullable:
            problems.append(f"column @{i} became nullable")
        if a.depth > b.depth:
            problems.append(
                f"column @{i} function depth grew from {b.depth} to {a.depth}")
        if not (a.sources <= b.sources):
            gained = sorted(f"{r}@{c}" for r, c in a.sources - b.sources)
            problems.append(
                f"column @{i} gained provenance {', '.join(gained)}")
        if b.is_const and not (a.is_const and a.const == b.const):
            problems.append(
                f"column @{i} lost constant value {b.const!r}")
    return problems


def _minimize_keys(keys: Iterable[frozenset[int]],
                   arity: int) -> frozenset[frozenset[int]]:
    """Drop the trivial full-column key, supersets of other keys, and
    cap the set at :data:`MAX_KEYS` (smallest first)."""
    full = frozenset(range(1, arity + 1))
    candidates = sorted(
        {k for k in keys if k != full},
        key=lambda k: (len(k), sorted(k)))
    kept: list[frozenset[int]] = []
    for k in candidates:
        if any(other <= k for other in kept):
            continue
        kept.append(k)
        if len(kept) >= MAX_KEYS:
            break
    return frozenset(kept)


class _Inferencer:
    def __init__(self, catalog: Mapping[str, int],
                 schema: DatabaseSchema | None) -> None:
        self.catalog = catalog
        self.schema = schema
        self.facts: dict[AlgebraExpr, NodeFacts] = {}
        self.diagnostics: list[Diagnostic] = []
        self._seen: set[tuple[str, str]] = set()

    # -- diagnostics --------------------------------------------------------

    def diag(self, code: str, severity: str, message: str,
             subject: str = "", suggestion: str = "") -> None:
        dedup = (code, message)
        if dedup in self._seen:
            return
        self._seen.add(dedup)
        self.diagnostics.append(Diagnostic(
            code=code, severity=severity, message=message, path="plan",
            subject=subject, suggestion=suggestion))

    # -- column expressions -------------------------------------------------

    def expr_fact(self, expr: ColExpr,
                  columns: tuple[ColumnFact, ...]) -> ColumnFact:
        if isinstance(expr, Col):
            return columns[expr.index - 1]
        if isinstance(expr, CConst):
            if expr.value is UNDEFINED:
                return ColumnFact(vtype=TYPE_ANY, nullable=True)
            return ColumnFact(vtype=value_type(expr.value),
                              const=expr.value, is_const=True)
        if isinstance(expr, CApp):
            args = [self.expr_fact(a, columns) for a in expr.args]
            depth = 1 + max((a.depth for a in args), default=0)
            sources = frozenset().union(*(a.sources for a in args))
            vtype = TYPE_ANY
            nullable = True
            schema = self.schema
            if schema is not None and schema.has_function(expr.name):
                sig = schema.function(expr.name)
                if sig.arity != len(expr.args):
                    self.diag(
                        "TY002", ERROR,
                        f"function {expr.name} applied to {len(expr.args)} "
                        f"argument(s), declared with {sig.arity}",
                        subject=str(expr))
                vtype = getattr(sig, "returns", TYPE_ANY) or TYPE_ANY
                nullable = (not sig.total) or any(a.nullable for a in args)
                declared = getattr(sig, "arg_types", ()) or ()
                for pos, (want, got) in enumerate(zip(declared, args),
                                                  start=1):
                    if (want not in (TYPE_ANY, "") and got.vtype
                            not in (TYPE_ANY, TYPE_NEVER, want)):
                        self.diag(
                            "TY006", WARNING,
                            f"function {expr.name} argument {pos} has type "
                            f"{got.vtype}, signature declares {want}",
                            subject=str(expr))
            elif schema is not None:
                self.diag(
                    "TY001", WARNING,
                    f"function {expr.name} is not declared in the schema",
                    subject=str(expr),
                    suggestion=f"declare {expr.name}/{len(expr.args)} with "
                               "with_function() so totality and types are "
                               "known")
            return ColumnFact(vtype=vtype, nullable=nullable, depth=depth,
                              sources=sources)
        raise TypeError(f"not a column expression: {expr!r}")

    # -- condition narrowing ------------------------------------------------

    def narrow(self, columns: tuple[ColumnFact, ...],
               conds: Iterable[Condition],
               keys: frozenset) -> tuple[tuple[ColumnFact, ...], frozenset]:
        """Facts of the rows *surviving* ``conds`` over ``columns``."""
        cols = list(columns)
        for cond in conds:
            lf = self.expr_fact(cond.left, tuple(cols))
            rf = self.expr_fact(cond.right, tuple(cols))
            if (isinstance(cond.left, CConst)
                    and isinstance(cond.right, CConst)):
                self.diag("TY005", INFO,
                          f"constant comparison {cond} left in the plan",
                          subject=str(cond),
                          suggestion="the optimizer's constant-folding pass "
                                     "decides it at plan time")
            if cond.op != "!=":
                if (lf.vtype not in (TYPE_ANY, TYPE_NEVER)
                        and rf.vtype not in (TYPE_ANY, TYPE_NEVER)
                        and lf.vtype != rf.vtype):
                    self.diag(
                        "TY003", WARNING,
                        f"comparison {cond} can never hold: "
                        f"{lf.vtype} vs {rf.vtype}",
                        subject=str(cond))
                # a row only survives if both operands are defined
                for operand in (cond.left, cond.right):
                    if isinstance(operand, Col):
                        idx = operand.index - 1
                        if cols[idx].nullable:
                            cols[idx] = ColumnFact(
                                vtype=cols[idx].vtype, nullable=False,
                                depth=cols[idx].depth,
                                const=cols[idx].const,
                                is_const=cols[idx].is_const,
                                sources=cols[idx].sources)
                if cond.op in _ORDERINGS and (lf.nullable or rf.nullable):
                    self.diag(
                        "TY004", INFO,
                        f"ordering {cond} compares a possibly-UNDEFINED "
                        "operand; such rows never pass", subject=str(cond))
            if cond.op == "=":
                if isinstance(cond.left, Col) and isinstance(cond.right, Col):
                    li, ri = cond.left.index - 1, cond.right.index - 1
                    met = meet_types(cols[li].vtype, cols[ri].vtype)
                    cols[li] = self._with_type(cols[li], met)
                    cols[ri] = self._with_type(cols[ri], met)
                else:
                    for col_op, other_fact in ((cond.left, rf),
                                               (cond.right, lf)):
                        if isinstance(col_op, Col):
                            idx = col_op.index - 1
                            met = meet_types(cols[idx].vtype,
                                             other_fact.vtype)
                            narrowed = self._with_type(cols[idx], met)
                            if (other_fact.is_const
                                    and not narrowed.is_const
                                    and met != TYPE_NEVER):
                                narrowed = ColumnFact(
                                    vtype=met, nullable=False,
                                    depth=narrowed.depth,
                                    const=other_fact.const, is_const=True,
                                    sources=narrowed.sources)
                            cols[idx] = narrowed
        # const-pinned columns are redundant in keys
        pinned = frozenset(
            i + 1 for i, c in enumerate(cols) if c.is_const)
        if pinned:
            keys = frozenset(k - pinned for k in keys) | keys
        return tuple(cols), _minimize_keys(keys, len(cols))

    @staticmethod
    def _with_type(fact: ColumnFact, vtype: str) -> ColumnFact:
        if vtype == fact.vtype:
            return fact
        return ColumnFact(vtype=vtype, nullable=fact.nullable,
                          depth=fact.depth, const=fact.const,
                          is_const=fact.is_const, sources=fact.sources)

    # -- nodes --------------------------------------------------------------

    def infer(self, node: AlgebraExpr) -> NodeFacts:
        cached = self.facts.get(node)
        if cached is not None:
            return cached
        result = self._infer(node)
        self.facts[node] = result
        return result

    def _infer(self, node: AlgebraExpr) -> NodeFacts:
        if isinstance(node, Rel):
            arity = arity_of(node, self.catalog)
            types: tuple[str, ...] = ()
            if self.schema is not None and self.schema.has_relation(node.name):
                decl = self.schema.relation(node.name)
                types = getattr(decl, "types", ()) or ()
            cols = tuple(
                ColumnFact(
                    vtype=types[i - 1] if i <= len(types) else TYPE_ANY,
                    sources=frozenset({(node.name, i)}))
                for i in range(1, arity + 1))
            return NodeFacts(arity, cols)
        if isinstance(node, Lit):
            return self._infer_lit(node)
        if isinstance(node, Params):
            cols = tuple(
                ColumnFact(sources=frozenset({("<params>", i)}))
                for i in range(1, node.arity + 1))
            return NodeFacts(node.arity, cols)
        if isinstance(node, AdomK):
            # a set of values: the single column is trivially distinct
            # (the full-column key, kept implicit)
            fact = ColumnFact(depth=node.level,
                              sources=frozenset({("<adom>", node.level)}))
            return NodeFacts(1, (fact,))
        if isinstance(node, Select):
            child = self.infer(node.child)
            cols, keys = self.narrow(child.columns, node.conds, child.keys)
            return NodeFacts(child.arity, cols, keys)
        if isinstance(node, Project):
            child = self.infer(node.child)
            cols = tuple(self.expr_fact(e, child.columns)
                         for e in node.exprs)
            # keys survive when every member column is kept as a bare Col
            position: dict[int, int] = {}
            for out, e in enumerate(node.exprs, start=1):
                if isinstance(e, Col) and e.index not in position:
                    position[e.index] = out
            keys = set()
            for k in child.keys:
                if all(i in position for i in k):
                    keys.add(frozenset(position[i] for i in k))
            return NodeFacts(len(node.exprs), cols,
                             _minimize_keys(keys, len(node.exprs)))
        if isinstance(node, (Join, Product)):
            left = self.infer(node.left)
            right = self.infer(node.right)
            cols = left.columns + right.columns
            keys = self._compose_keys(left, right)
            if isinstance(node, Join):
                cols, keys = self.narrow(cols, node.conds, keys)
            return NodeFacts(left.arity + right.arity, cols, keys)
        if isinstance(node, Union):
            left = self.infer(node.left)
            right = self.infer(node.right)
            cols = tuple(a.merge(b)
                         for a, b in zip(left.columns, right.columns))
            return NodeFacts(left.arity, cols)
        if isinstance(node, Diff):
            left = self.infer(node.left)
            self.infer(node.right)
            return NodeFacts(left.arity, left.columns, left.keys)
        if isinstance(node, Enumerate):
            child = self.infer(node.child)
            input_facts = [self.expr_fact(e, child.columns)
                           for e in node.inputs]
            depth = 1 + max((f.depth for f in input_facts), default=0)
            sources = frozenset().union(
                *(f.sources for f in input_facts)) if input_facts \
                else frozenset()
            out = tuple(ColumnFact(depth=depth, sources=sources)
                        for _ in range(node.out_count))
            return NodeFacts(child.arity + node.out_count,
                             child.columns + out)
        raise TypeError(f"not an algebra node: {node!r}")

    def _infer_lit(self, node: Lit) -> NodeFacts:
        rows = list(node.rows)
        if not rows:
            cols = tuple(ColumnFact(vtype=TYPE_NEVER)
                         for _ in range(node.arity))
            # the empty relation has at most one row (zero), so the
            # empty column set is (vacuously) a key
            return NodeFacts(node.arity, cols,
                             frozenset({frozenset()})
                             if node.arity else frozenset())
        cols = []
        keys = set()
        for i in range(node.arity):
            values = [row[i] for row in rows]
            defined = [v for v in values if v is not UNDEFINED]
            nullable = len(defined) != len(values)
            vtype = TYPE_NEVER
            for v in defined:
                vtype = join_types(vtype, value_type(v))
            if not defined:
                vtype = TYPE_ANY
            distinct = set(values)
            is_const = (len(distinct) == 1
                        and values[0] is not UNDEFINED)
            cols.append(ColumnFact(
                vtype=vtype, nullable=nullable,
                const=values[0] if is_const else None, is_const=is_const))
            if len(distinct) == len(rows):
                keys.add(frozenset({i + 1}))
        if len(rows) == 1 and node.arity:
            keys.add(frozenset())
        return NodeFacts(node.arity, tuple(cols),
                         _minimize_keys(keys, node.arity))

    def _compose_keys(self, left: NodeFacts,
                      right: NodeFacts) -> frozenset[frozenset[int]]:
        """Keys of a join/product: a left key plus a right key (either
        possibly the implicit full-column key) determines the row."""
        full_left = frozenset(range(1, left.arity + 1))
        full_right = frozenset(range(1, right.arity + 1))
        left_keys = set(left.keys) | {full_left}
        right_keys = set(right.keys) | {full_right}
        composed = set()
        for kl in left_keys:
            for kr in right_keys:
                composed.add(kl | frozenset(i + left.arity for i in kr))
        return _minimize_keys(composed, left.arity + right.arity)


#: Memo for whole-plan inferences.  Inference is pure in (plan,
#: catalog, schema), and the validator re-infers the same plan objects
#: across pipeline phases (simplify-phase TV003, post-optimize TV003,
#: the executor's typed-facts pass), so a small cache turns the
#: always-on validation path from four inferences per run into one or
#: two.  Bounded FIFO: plans are session-scoped, so simple eviction
#: suffices.
_INFER_CACHE: dict[object, PlanTypes] = {}
_INFER_CACHE_MAX = 256


def infer_plan_types(plan: AlgebraExpr, catalog: Mapping[str, int],
                     schema: DatabaseSchema | None = None) -> PlanTypes:
    """Infer :class:`NodeFacts` for every node of ``plan`` bottom-up.

    ``catalog`` maps relation names to arities (as everywhere in the
    engine); ``schema``, when given, additionally contributes declared
    column types and scalar-function signatures, enabling the TY001 /
    TY002 / TY006 checks.  Inference records problems as diagnostics
    rather than raising; structurally identical subplans share one
    inference (and one diagnostic).  Results are memoized per
    (plan, catalog, schema) — all three are immutable values.

    Raises :class:`~repro.errors.EvaluationError` only when the plan
    references a relation missing from ``catalog`` — the same contract
    as :func:`repro.algebra.ast.arity_of`.
    """
    # DatabaseSchema compares by identity; key on its declared content
    # so structurally equal schemas from separate translations share
    # cache entries.
    schema_key = (None if schema is None
                  else (tuple(schema.relations), tuple(schema.functions)))
    key = (plan, tuple(sorted(catalog.items())), schema_key)
    cached = _INFER_CACHE.get(key)
    if cached is not None:
        return cached
    inferencer = _Inferencer(catalog, schema)
    root = inferencer.infer(plan)
    result = PlanTypes(root=root, facts=inferencer.facts,
                       diagnostics=inferencer.diagnostics)
    if len(_INFER_CACHE) >= _INFER_CACHE_MAX:
        _INFER_CACHE.pop(next(iter(_INFER_CACHE)))
    _INFER_CACHE[key] = result
    return result


def _node_label(node: AlgebraExpr) -> str:
    if isinstance(node, Rel):
        return f"rel {node.name}"
    if isinstance(node, Lit):
        return f"lit/{node.arity} ({len(node.rows)} rows)"
    if isinstance(node, Params):
        return f"params/{node.arity}"
    if isinstance(node, AdomK):
        return f"adom^{node.level}"
    if isinstance(node, Select):
        return f"select [{', '.join(sorted(str(c) for c in node.conds))}]"
    if isinstance(node, Project):
        return f"project [{', '.join(str(e) for e in node.exprs)}]"
    if isinstance(node, Join):
        return f"join [{', '.join(sorted(str(c) for c in node.conds))}]"
    if isinstance(node, Product):
        return "product"
    if isinstance(node, Union):
        return "union"
    if isinstance(node, Diff):
        return "diff"
    if isinstance(node, Enumerate):
        return (f"enumerate {node.enumerator}"
                f"[{', '.join(str(e) for e in node.inputs)}]"
                f" +{node.out_count}")
    return type(node).__name__.lower()


def render_typed_plan(plan: AlgebraExpr, types: PlanTypes) -> str:
    """The plan as an indented tree, one line per node, each annotated
    with its inferred column facts — the ``repro typecheck`` view."""
    lines: list[str] = []

    def emit(node: AlgebraExpr, prefix: str, child_prefix: str) -> None:
        facts = types.facts_of(node)
        lines.append(f"{prefix}{_node_label(node)}  :: {facts.describe()}")
        children: tuple[AlgebraExpr, ...] = ()
        if isinstance(node, (Select, Project, Enumerate)):
            children = (node.child,)
        elif isinstance(node, (Join, Product, Union, Diff)):
            children = (node.left, node.right)
        for i, child in enumerate(children):
            last = i == len(children) - 1
            branch = "└─ " if last else "├─ "
            cont = "   " if last else "│  "
            emit(child, child_prefix + branch, child_prefix + cont)

    emit(plan, "", "")
    return "\n".join(lines)
