"""Active domains and term closures (Section 5 of the paper).

``adom(q, I)`` is the set of constants of the query plus every value in
the instance.  The *term closure to level k*, ``term_k(C)``, extends a
finite set ``C`` by at most ``k`` rounds of scalar-function application
(functions only — no inverses; this is the paper's difference from the
DB-window closure of [BM92a]).

Embedded domain independence says: there is a ``k`` such that the query
answer is already determined by the behaviour of the interpretation on
``term_k(adom(q, I))`` — evaluating the query never needs to look
further into the infinite domain.
"""

from __future__ import annotations

from itertools import product
from typing import Hashable, Iterable

from repro.core.queries import CalculusQuery
from repro.core.schema import DatabaseSchema
from repro.data.instance import Instance
from repro.data.interpretation import Interpretation, UNDEFINED

__all__ = ["adom", "term_closure", "term_closure_applications", "closure_levels"]


def adom(query: CalculusQuery | None, instance: Instance) -> frozenset:
    """``adom(q, I)``: constants of the query plus all instance values."""
    values = set(instance.active_domain())
    if query is not None:
        values |= query.constants()
    return frozenset(values)


def term_closure(base: Iterable[Hashable], k: int,
                 interpretation: Interpretation,
                 schema: DatabaseSchema,
                 function_names: Iterable[str] | None = None) -> frozenset:
    """``term_k(base)``: close ``base`` under at most ``k`` rounds of
    application of the schema's scalar functions.

    ``function_names`` restricts which functions participate (by default
    all functions of the schema — for a query one passes the functions it
    mentions, matching ``term_k(adom(q, I))`` computed "for q").

    The closure can grow as ``|base| ** (max_arity ** k)`` in the worst
    case; callers in tests and benchmarks keep ``base`` and ``k`` small.
    """
    if k < 0:
        raise ValueError(f"closure level must be >= 0, got {k}")
    allowed = set(function_names) if function_names is not None else None
    current: set = set(base)
    frontier: set = set(current)
    for _ in range(k):
        new_values: set = set()
        for sig in schema.functions:
            if allowed is not None and sig.name not in allowed:
                continue
            fn = interpretation[sig.name]
            # Apply to argument tuples touching the frontier at least once:
            # tuples entirely inside the older layers were handled in a
            # previous round.
            for args in product(sorted(current, key=repr), repeat=sig.arity):
                if not any(a in frontier for a in args):
                    continue
                value = fn(*args)
                if value is UNDEFINED:
                    continue
                if value not in current:
                    new_values.add(value)
        if not new_values:
            break
        current |= new_values
        frontier = new_values
    return frozenset(current)


def term_closure_applications(base: Iterable[Hashable], k: int,
                              interpretation: Interpretation,
                              schema: DatabaseSchema,
                              function_names: Iterable[str] | None = None
                              ) -> frozenset[tuple[str, tuple]]:
    """All (function name, argument tuple) applications examined while
    computing ``term_k(base)``.

    The EDI experiments protect exactly these applications when building
    perturbed interpretations: two interpretations that return the same
    values on this set "agree on ``term_k(base)``" in the paper's sense.
    """
    if k < 0:
        raise ValueError(f"closure level must be >= 0, got {k}")
    allowed = set(function_names) if function_names is not None else None
    current: set = set(base)
    applications: set[tuple[str, tuple]] = set()
    for _ in range(k):
        new_values: set = set()
        for sig in schema.functions:
            if allowed is not None and sig.name not in allowed:
                continue
            fn = interpretation[sig.name]
            for args in product(sorted(current, key=repr), repeat=sig.arity):
                applications.add((sig.name, args))
                value = fn(*args)
                if value is UNDEFINED:
                    continue
                if value not in current:
                    new_values.add(value)
        if not new_values:
            # keep going is pointless only if the value set is stable —
            # applications over the stable set were just recorded.
            break
        current |= new_values
    return frozenset(applications)


def closure_levels(base: Iterable[Hashable], k: int,
                   interpretation: Interpretation,
                   schema: DatabaseSchema) -> list[frozenset]:
    """``[term_0(base), term_1(base), ..., term_k(base)]`` — the growth
    profile reported by benchmark E2."""
    return [
        term_closure(base, level, interpretation, schema)
        for level in range(k + 1)
    ]
