"""Synthetic data generation for tests and benchmarks.

The paper has no experimental datasets (it is a theory paper); the
benchmark harness drives the implementation with synthetic instances
produced here.  Everything is seeded for reproducibility.
"""

from __future__ import annotations

import random
from typing import Hashable, Sequence

from repro.core.schema import DatabaseSchema
from repro.data.instance import Instance
from repro.data.interpretation import Interpretation
from repro.data.relation import Relation

__all__ = [
    "random_relation",
    "random_instance",
    "integer_universe",
    "standard_functions",
    "skewed_relation",
]


def integer_universe(size: int, start: int = 0) -> list[int]:
    """A small integer universe ``[start, start + size)``."""
    return list(range(start, start + size))


def random_relation(arity: int, n_rows: int, universe: Sequence[Hashable],
                    rng: random.Random) -> Relation:
    """A relation of ``n_rows`` distinct random tuples over ``universe``.

    If the universe is too small to supply ``n_rows`` distinct tuples the
    relation saturates at ``|universe| ** arity`` rows.
    """
    capacity = len(universe) ** arity
    target = min(n_rows, capacity)
    rows: set[tuple] = set()
    while len(rows) < target:
        rows.add(tuple(rng.choice(universe) for _ in range(arity)))
    return Relation(arity, rows)


def skewed_relation(arity: int, n_rows: int, universe: Sequence[Hashable],
                    rng: random.Random, hot_fraction: float = 0.2,
                    hot_probability: float = 0.8) -> Relation:
    """A relation with Zipf-ish skew: ``hot_probability`` of column values
    are drawn from the first ``hot_fraction`` of the universe.

    Used by the engine benchmarks, where join behaviour under skew is
    the interesting regime.
    """
    hot_count = max(1, int(len(universe) * hot_fraction))
    hot = universe[:hot_count]
    rows: set[tuple] = set()
    attempts = 0
    while len(rows) < n_rows and attempts < n_rows * 20:
        attempts += 1
        row = tuple(
            rng.choice(hot) if rng.random() < hot_probability else rng.choice(universe)
            for _ in range(arity)
        )
        rows.add(row)
    return Relation(arity, rows)


def random_instance(schema: DatabaseSchema, n_rows: int,
                    universe: Sequence[Hashable],
                    seed: int = 0) -> Instance:
    """An instance with ``n_rows`` random rows in every declared relation."""
    rng = random.Random(seed)
    relations = {
        decl.name: random_relation(decl.arity, n_rows, universe, rng)
        for decl in schema.relations
    }
    return Instance(relations)


def standard_functions(schema: DatabaseSchema, modulus: int = 101,
                       seed: int = 0) -> Interpretation:
    """A deterministic interpretation for every function of ``schema``.

    Each function is a distinct affine map modulo ``modulus`` on the
    integers (non-integers hash first), so different function symbols get
    visibly different behaviour, applications stay inside a bounded
    universe, and everything is reproducible from the seed.
    """
    rng = random.Random(seed)

    def make(fname: str):
        a = rng.randrange(1, modulus)
        b = rng.randrange(modulus)

        def fn(*args):
            total = 0
            for value in args:
                if not isinstance(value, int):
                    value = hash(value)
                total = (total * 31 + value) % modulus
            return (a * total + b) % modulus

        return fn

    return Interpretation({sig.name: make(sig.name) for sig in schema.functions},
                          name=f"standard(mod {modulus}, seed {seed})")
