"""Interpretations of scalar function symbols.

The paper separates the *syntax* of scalar functions from their meaning:
an interpretation ``F`` assigns to each function symbol of the schema a
total function over the underlying domain.  This module provides:

* :class:`Interpretation` — wraps Python callables, with call counting
  (used by the benchmark harness) and optional memoization;
* :class:`TabulatedInterpretation` — a finite table plus fallback,
  the building block for the embedded-domain-independence experiments,
  where two interpretations must *agree on a neighborhood* of the active
  domain and be arbitrary elsewhere.
"""

from __future__ import annotations

from typing import Callable, Hashable, Iterable, Mapping

from repro.core.schema import DatabaseSchema
from repro.errors import EvaluationError

__all__ = ["Interpretation", "TabulatedInterpretation", "perturbed_outside",
           "UNDEFINED", "partial_function"]


class _Undefined:
    """The result of applying a partial scalar function outside its
    domain (Section 9 practical setting).

    Semantics fixed across the library: any atom whose term evaluation
    is UNDEFINED is *false* (hence its negation is true), and a
    constructed row containing UNDEFINED is dropped.  This keeps the
    calculus semantics, the algebra evaluator, and the physical engine
    in agreement — tested in tests/test_partial_functions.py.
    """

    _instance = None

    def __new__(cls):
        if cls._instance is None:
            cls._instance = super().__new__(cls)
        return cls._instance

    def __repr__(self) -> str:
        return "UNDEFINED"

    def __bool__(self) -> bool:
        return False


#: Singleton undefined value.
UNDEFINED = _Undefined()


def partial_function(fn, exceptions=(ArithmeticError, ValueError, TypeError)):
    """Wrap a host function so that the listed exceptions (and explicit
    ``None`` results) become :data:`UNDEFINED` instead of propagating."""
    def wrapper(*args):
        try:
            out = fn(*args)
        except exceptions:
            return UNDEFINED
        return UNDEFINED if out is None else out
    return wrapper


class Interpretation:
    """Maps scalar function names to Python callables.

    Implements ``__getitem__`` so it can be passed directly wherever a
    plain mapping of functions is expected (e.g.
    :func:`repro.core.terms.evaluate_term`).  Each lookup returns a
    counting wrapper, so ``interp.call_count("f")`` reports how many
    times ``f`` was applied — the paper's practical discussion (Section 9)
    is about limiting exactly these applications, and benchmark E6 counts
    them.
    """

    def __init__(self, functions: Mapping[str, Callable], name: str = "",
                 memoize: bool = False,
                 enumerators: Mapping[str, Callable] | None = None):
        self.name = name
        self._functions: dict[str, Callable] = dict(functions)
        self._enumerators: dict[str, Callable] = dict(enumerators or {})
        self._memoize = memoize
        self._cache: dict[tuple[str, tuple], Hashable] = {}
        self._calls: dict[str, int] = {fname: 0 for fname in self._functions}

    # -- mapping protocol -------------------------------------------------------

    def __getitem__(self, name: str) -> Callable:
        try:
            fn = self._functions[name]
        except KeyError:
            raise EvaluationError(f"interpretation has no function {name!r}") from None

        def wrapper(*args):
            self._calls[name] = self._calls.get(name, 0) + 1
            if self._memoize:
                key = (name, args)
                if key in self._cache:
                    return self._cache[key]
                value = fn(*args)
                self._cache[key] = value
                return value
            return fn(*args)

        return wrapper

    def __contains__(self, name: str) -> bool:
        return name in self._functions

    @property
    def function_names(self) -> tuple[str, ...]:
        return tuple(self._functions)

    def raw(self, name: str) -> Callable:
        """The underlying callable, without counting or memoization."""
        try:
            return self._functions[name]
        except KeyError:
            raise EvaluationError(f"interpretation has no function {name!r}") from None

    def apply(self, name: str, *args) -> Hashable:
        """Apply function ``name`` (counted)."""
        return self[name](*args)

    def enumerator(self, name: str) -> Callable:
        """The inverse enumerator registered under ``name`` (see
        :mod:`repro.finds.annotations`); called with the known values,
        it yields tuples of derived values."""
        try:
            return self._enumerators[name]
        except KeyError:
            raise EvaluationError(
                f"interpretation has no enumerator {name!r}") from None

    # -- statistics ----------------------------------------------------------------

    def call_count(self, name: str | None = None) -> int:
        if name is None:
            return sum(self._calls.values())
        return self._calls.get(name, 0)

    def reset_counts(self) -> None:
        self._calls = {fname: 0 for fname in self._functions}

    # -- validation ------------------------------------------------------------------

    def validate(self, schema: DatabaseSchema) -> None:
        """Every function of the schema must be interpreted."""
        for sig in schema.functions:
            if sig.name not in self._functions:
                raise EvaluationError(
                    f"interpretation missing function {sig.name!r} required by schema"
                )

    def __repr__(self) -> str:
        label = self.name or "anonymous"
        return f"Interpretation({label}: {', '.join(self._functions)})"


class TabulatedInterpretation(Interpretation):
    """An interpretation given by finite tables with a fallback rule.

    For each function name, a dict from argument tuples to values; calls
    outside the table go to ``fallback(name, args)``.  Two tabulated
    interpretations sharing tables but with different fallbacks *agree on
    the tabulated neighborhood* — the construction behind the
    embedded-domain-independence experiments (E2).
    """

    def __init__(self, tables: Mapping[str, Mapping[tuple, Hashable]],
                 fallback: Callable[[str, tuple], Hashable],
                 name: str = ""):
        self.tables = {fname: dict(t) for fname, t in tables.items()}
        self.fallback = fallback

        def make(fname: str) -> Callable:
            table = self.tables[fname]

            def fn(*args):
                if args in table:
                    return table[args]
                return fallback(fname, args)

            return fn

        super().__init__({fname: make(fname) for fname in self.tables}, name=name)


def perturbed_outside(base: Interpretation, protected_args: Iterable[tuple],
                      twist: Callable[[str, tuple], Hashable],
                      name: str = "perturbed") -> Interpretation:
    """A new interpretation agreeing with ``base`` on protected argument
    tuples and answering ``twist(fname, args)`` elsewhere.

    ``protected_args`` is an iterable of *argument tuples* (any arity);
    an application ``f(a1, ..., an)`` is protected when ``(a1, ..., an)``
    is in the set.  Used to realize "interpretations that agree on
    ``term_k(adom(q, I))``" in the EDI experiments.
    """
    protected = set(tuple(a) for a in protected_args)

    def make(fname: str) -> Callable:
        raw = base.raw(fname)

        def fn(*args):
            if args in protected:
                return raw(*args)
            return twist(fname, args)

        return fn

    return Interpretation({fname: make(fname) for fname in base.function_names},
                          name=name)
