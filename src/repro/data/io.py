"""Instance serialization (JSON).

The format is deliberately plain so instances can be produced by any
tool::

    {
      "R":  {"arity": 1, "rows": [[1], [2], [3]]},
      "EMP": {"arity": 2, "rows": [["ann", 1000], ["bob", 2000]]}
    }

Values are JSON scalars (strings, numbers, booleans, null); row entries
are compared with Python equality after loading, so ``1`` and ``1.0``
collapse the way JSON numbers do.
"""

from __future__ import annotations

import json
import pathlib

from repro.data.instance import Instance
from repro.data.relation import Relation
from repro.errors import EvaluationError

__all__ = [
    "instance_to_json",
    "instance_from_json",
    "save_instance",
    "load_instance",
]


def instance_to_json(instance: Instance, indent: int | None = 2) -> str:
    """Serialize ``instance`` to the JSON format above (rows sorted for
    stable output)."""
    payload = {
        name: {
            "arity": instance.relation(name).arity,
            "rows": sorted((list(row) for row in instance.relation(name)),
                           key=repr),
        }
        for name in sorted(instance.names)
    }
    return json.dumps(payload, indent=indent)


def instance_from_json(text: str) -> Instance:
    """Parse an instance from its JSON serialization."""
    try:
        payload = json.loads(text)
    except json.JSONDecodeError as err:
        raise EvaluationError(f"invalid instance JSON: {err}") from None
    if not isinstance(payload, dict):
        raise EvaluationError("instance JSON must be an object of relations")
    relations: dict[str, Relation] = {}
    for name, spec in payload.items():
        if not isinstance(spec, dict) or "rows" not in spec:
            raise EvaluationError(
                f"relation {name}: expected an object with 'rows' (and "
                "optionally 'arity')")
        rows = [tuple(row) for row in spec["rows"]]
        if "arity" in spec:
            arity = spec["arity"]
        elif rows:
            arity = len(rows[0])
        else:
            raise EvaluationError(
                f"relation {name}: empty relation needs an explicit 'arity'")
        relations[name] = Relation(arity, rows)
    return Instance(relations)


def save_instance(instance: Instance, path: str | pathlib.Path) -> None:
    """Write ``instance`` to ``path`` as JSON."""
    pathlib.Path(path).write_text(instance_to_json(instance))


def load_instance(path: str | pathlib.Path) -> Instance:
    """Read an instance from a JSON file."""
    return instance_from_json(pathlib.Path(path).read_text())
