"""Finite relations: the storage substrate.

A :class:`Relation` is a finite set of fixed-arity tuples over the
underlying domain.  Set semantics (no duplicates) match the calculus and
the extended algebra of the paper.
"""

from __future__ import annotations

from typing import Hashable, Iterable, Iterator

from repro.errors import EvaluationError

__all__ = ["Relation", "Row"]

Row = tuple  # a tuple of domain values


class Relation:
    """A finite, set-semantics relation of fixed arity.

    Tuples are plain Python tuples of hashable values.  The class is a
    thin, well-checked wrapper around ``frozenset`` with arity metadata
    and the handful of operations the evaluators need.
    """

    __slots__ = ("_arity", "_rows")

    def __init__(self, arity: int, rows: Iterable[Row] = ()):
        if arity < 0:
            raise EvaluationError(f"relation arity must be >= 0, got {arity}")
        self._arity = arity
        frozen: set[Row] = set()
        for row in rows:
            row = tuple(row)
            if len(row) != arity:
                raise EvaluationError(
                    f"row {row!r} has {len(row)} columns, relation has arity {arity}"
                )
            frozen.add(row)
        self._rows: frozenset[Row] = frozenset(frozen)

    # -- constructors ---------------------------------------------------------

    @classmethod
    def from_values(cls, values: Iterable[Hashable]) -> "Relation":
        """A unary relation from a plain iterable of values."""
        return cls(1, ((v,) for v in values))

    @classmethod
    def empty(cls, arity: int) -> "Relation":
        return cls(arity)

    # -- basic protocol ---------------------------------------------------------

    @property
    def arity(self) -> int:
        return self._arity

    @property
    def rows(self) -> frozenset[Row]:
        return self._rows

    def __len__(self) -> int:
        return len(self._rows)

    def __iter__(self) -> Iterator[Row]:
        return iter(self._rows)

    def __contains__(self, row) -> bool:
        return tuple(row) in self._rows

    def __eq__(self, other) -> bool:
        if not isinstance(other, Relation):
            return NotImplemented
        return self._arity == other._arity and self._rows == other._rows

    def __hash__(self) -> int:
        return hash((self._arity, self._rows))

    def __repr__(self) -> str:
        sample = sorted(self._rows, key=repr)[:4]
        suffix = ", ..." if len(self._rows) > 4 else ""
        return f"Relation(arity={self._arity}, rows={sample}{suffix} [{len(self)} rows])"

    # -- algebra building blocks --------------------------------------------------

    def _require_same_arity(self, other: "Relation", op: str) -> None:
        if self._arity != other._arity:
            raise EvaluationError(
                f"{op}: arity mismatch {self._arity} vs {other._arity}"
            )

    def union(self, other: "Relation") -> "Relation":
        self._require_same_arity(other, "union")
        return Relation(self._arity, self._rows | other._rows)

    def difference(self, other: "Relation") -> "Relation":
        self._require_same_arity(other, "difference")
        return Relation(self._arity, self._rows - other._rows)

    def intersection(self, other: "Relation") -> "Relation":
        self._require_same_arity(other, "intersection")
        return Relation(self._arity, self._rows & other._rows)

    def product(self, other: "Relation") -> "Relation":
        return Relation(
            self._arity + other._arity,
            (a + b for a in self._rows for b in other._rows),
        )

    def project_positions(self, positions: Iterable[int]) -> "Relation":
        """Classic projection onto 0-based column positions."""
        positions = list(positions)
        for p in positions:
            if not 0 <= p < self._arity:
                raise EvaluationError(
                    f"projection position {p} out of range for arity {self._arity}"
                )
        return Relation(len(positions),
                        (tuple(row[p] for p in positions) for row in self._rows))

    def active_values(self) -> frozenset:
        """All domain values appearing in any column."""
        out: set = set()
        for row in self._rows:
            out.update(row)
        return frozenset(out)
