"""Database instances: named finite relations.

An :class:`Instance` maps relation names to :class:`~repro.data.relation.Relation`
objects, optionally validated against a :class:`~repro.core.schema.DatabaseSchema`.
"""

from __future__ import annotations

from typing import Iterable, Iterator, Mapping

from repro.core.schema import DatabaseSchema
from repro.data.relation import Relation, Row
from repro.errors import EvaluationError, SchemaError

__all__ = ["Instance"]


class Instance:
    """An immutable database instance.

    ``Instance({"R": Relation(2, [...]), ...})`` or, more conveniently,
    ``Instance.of(R=[(1, 2), (3, 4)], S=[(5,)])`` which infers arities
    from the first row of each relation.
    """

    __slots__ = ("_relations", "_fingerprint")

    def __init__(self, relations: Mapping[str, Relation]):
        self._relations: dict[str, Relation] = dict(relations)
        self._fingerprint: int | None = None
        for name, rel in self._relations.items():
            if not isinstance(rel, Relation):
                raise EvaluationError(f"instance entry {name} is not a Relation")

    @classmethod
    def of(cls, **named_rows: Iterable[Row]) -> "Instance":
        """Build an instance from keyword arguments of row iterables.

        Arity is inferred from the first row; an empty iterable yields an
        empty relation whose arity cannot be inferred, so pass a
        ``Relation`` explicitly for empty relations (or use ``with_empty``).
        """
        relations: dict[str, Relation] = {}
        for name, rows in named_rows.items():
            if isinstance(rows, Relation):
                relations[name] = rows
                continue
            rows = [tuple(r) if isinstance(r, (tuple, list)) else (r,) for r in rows]
            if not rows:
                raise EvaluationError(
                    f"cannot infer arity of empty relation {name}; "
                    "pass a Relation or use with_empty"
                )
            relations[name] = Relation(len(rows[0]), rows)
        return cls(relations)

    # -- access -----------------------------------------------------------------

    def relation(self, name: str) -> Relation:
        try:
            return self._relations[name]
        except KeyError:
            raise EvaluationError(f"instance has no relation {name!r}") from None

    def has_relation(self, name: str) -> bool:
        return name in self._relations

    @property
    def names(self) -> tuple[str, ...]:
        return tuple(self._relations)

    def __iter__(self) -> Iterator[str]:
        return iter(self._relations)

    def __len__(self) -> int:
        return len(self._relations)

    def __eq__(self, other) -> bool:
        if not isinstance(other, Instance):
            return NotImplemented
        return self._relations == other._relations

    def __hash__(self) -> int:
        return self.fingerprint()

    def fingerprint(self) -> int:
        """Content hash of the instance, computed once and cached.

        Instances are immutable, so the fingerprint is a valid identity
        for content-addressed caches (:mod:`repro.engine.caches` keys
        collected statistics and term-closure materializations by it).
        """
        if self._fingerprint is None:
            self._fingerprint = hash(frozenset(self._relations.items()))
        return self._fingerprint

    def __repr__(self) -> str:
        parts = ", ".join(f"{n}[{len(r)}x{r.arity}]" for n, r in self._relations.items())
        return f"Instance({parts})"

    # -- derived -------------------------------------------------------------------

    def with_relation(self, name: str, relation: Relation) -> "Instance":
        updated = dict(self._relations)
        updated[name] = relation
        return Instance(updated)

    def with_empty(self, name: str, arity: int) -> "Instance":
        return self.with_relation(name, Relation.empty(arity))

    def active_domain(self) -> frozenset:
        """``adom(I)``: every value appearing in any relation of the instance."""
        out: set = set()
        for rel in self._relations.values():
            out |= rel.active_values()
        return frozenset(out)

    def total_rows(self) -> int:
        return sum(len(r) for r in self._relations.values())

    def validate(self, schema: DatabaseSchema) -> None:
        """Check every relation against ``schema`` (names and arities)."""
        for name, rel in self._relations.items():
            decl = schema.relation(name)  # raises SchemaError when undeclared
            if decl.arity != rel.arity:
                raise SchemaError(
                    f"relation {name}: instance arity {rel.arity} != declared {decl.arity}"
                )
