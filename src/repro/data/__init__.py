"""Finite-relation storage substrate, interpretations, and domains.

* :mod:`repro.data.relation` — set-semantics relations;
* :mod:`repro.data.instance` — named relations, ``adom(I)``;
* :mod:`repro.data.interpretation` — scalar function interpretations;
* :mod:`repro.data.domain` — ``adom(q, I)`` and term closures ``term_k``;
* :mod:`repro.data.generators` — seeded synthetic data.
"""

from repro.data.domain import adom, closure_levels, term_closure, term_closure_applications
from repro.data.generators import (
    integer_universe,
    random_instance,
    random_relation,
    skewed_relation,
    standard_functions,
)
from repro.data.instance import Instance
from repro.data.io import (
    instance_from_json,
    instance_to_json,
    load_instance,
    save_instance,
)
from repro.data.interpretation import (
    UNDEFINED,
    Interpretation,
    TabulatedInterpretation,
    partial_function,
    perturbed_outside,
)
from repro.data.relation import Relation

__all__ = [
    "Relation",
    "Instance",
    "Interpretation",
    "TabulatedInterpretation",
    "perturbed_outside",
    "UNDEFINED",
    "partial_function",
    "instance_to_json",
    "instance_from_json",
    "save_instance",
    "load_instance",
    "adom",
    "term_closure",
    "term_closure_applications",
    "closure_levels",
    "random_relation",
    "random_instance",
    "skewed_relation",
    "integer_universe",
    "standard_functions",
]
