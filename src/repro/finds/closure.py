"""Closure and entailment for FinD sets.

FinDs obey the functional-dependency inference rules, so entailment is
decided by the attribute-set closure algorithm of [BB79] (also [Ull88]),
which the paper invokes both to define ``bd``-entailment and to sort
conjunctions during the RANF transformation.

``attribute_closure`` is the linear-ish workhorse; ``closure_finds`` and
``derives_brute_force`` are exponential reference implementations used
only by tests to validate the fast paths.
"""

from __future__ import annotations

from itertools import chain, combinations
from typing import Iterable

from repro.finds.find import FinD

__all__ = [
    "attribute_closure",
    "entails",
    "entails_all",
    "equivalent_covers",
    "bounded_variables",
    "closure_finds",
    "derives_brute_force",
]


def attribute_closure(attrs: Iterable[str], finds: Iterable[FinD]) -> frozenset[str]:
    """The closure of ``attrs`` under ``finds`` ([BB79]).

    Returns the largest set X with ``finds |= attrs -> X``.  Iterates to
    a fixed point; each FinD fires at most once.
    """
    closure: set[str] = set(attrs)
    pending = list(finds)
    changed = True
    while changed and pending:
        changed = False
        remaining: list[FinD] = []
        for dep in pending:
            if dep.lhs <= closure:
                if not dep.rhs <= closure:
                    closure |= dep.rhs
                    changed = True
            else:
                remaining.append(dep)
        pending = remaining
    return frozenset(closure)


def entails(finds: Iterable[FinD], dep: FinD) -> bool:
    """``finds |= dep`` — decided via attribute closure."""
    finds = list(finds)
    return dep.rhs <= attribute_closure(dep.lhs, finds)


def entails_all(finds: Iterable[FinD], deps: Iterable[FinD]) -> bool:
    """``finds |= dep`` for every ``dep`` in ``deps``."""
    finds = list(finds)
    return all(entails(finds, dep) for dep in deps)


def equivalent_covers(a: Iterable[FinD], b: Iterable[FinD]) -> bool:
    """Two FinD sets are equivalent when each entails the other."""
    a, b = list(a), list(b)
    return entails_all(a, b) and entails_all(b, a)


def bounded_variables(finds: Iterable[FinD]) -> frozenset[str]:
    """Variables X with ``finds |= {} -> X`` — bounded outright.

    This generalizes the ``gen`` operator of [GT91]: in the function-free
    case every FinD produced by ``bd`` has an empty left side, and the
    bounded variables are exactly the generated ones.
    """
    return attribute_closure((), finds)


# ---------------------------------------------------------------------------
# Exponential reference implementations (test oracles)
# ---------------------------------------------------------------------------

def _subsets(items: frozenset[str]):
    ordered = sorted(items)
    return chain.from_iterable(combinations(ordered, r) for r in range(len(ordered) + 1))


def closure_finds(finds: Iterable[FinD], universe: Iterable[str]) -> frozenset[FinD]:
    """Every non-trivial FinD over ``universe`` implied by ``finds``.

    Exponential in ``|universe|``; a reference oracle for tests and for
    the cover-size benchmark (E5), never used on the hot path.
    """
    finds = list(finds)
    universe = frozenset(universe)
    out: set[FinD] = set()
    for lhs in _subsets(universe):
        lhs_set = frozenset(lhs)
        closed = attribute_closure(lhs_set, finds) & universe
        rhs = closed - lhs_set
        if rhs:
            out.add(FinD(lhs_set, rhs))
    return frozenset(out)


def derives_brute_force(finds: Iterable[FinD], dep: FinD, max_rounds: int = 6) -> bool:
    """Entailment by saturating Armstrong's rules (reflexivity,
    augmentation restricted to mentioned variables, transitivity,
    union, decomposition).  An independent oracle for property tests
    against :func:`entails`.
    """
    finds = set(finds)
    universe = dep.variables | frozenset().union(*(f.variables for f in finds)) \
        if finds else dep.variables
    if dep.is_trivial():
        return True
    known: set[FinD] = set(finds)
    for _ in range(max_rounds):
        new: set[FinD] = set()
        listing = list(known)
        # transitivity + union via pairwise combination
        for a in listing:
            for b in listing:
                if b.lhs <= a.lhs | a.rhs:
                    candidate = FinD(a.lhs, a.rhs | b.rhs)
                    if candidate not in known and not candidate.is_trivial():
                        new.add(candidate)
        # augmentation (only by variables of the universe, which suffices)
        for a in listing:
            for v in universe:
                candidate = FinD(a.lhs | {v}, a.rhs | {v})
                if candidate not in known and not candidate.is_trivial():
                    new.add(candidate)
        if not new:
            break
        known |= new
        for k in known:
            if k.lhs <= dep.lhs and dep.rhs <= k.rhs | dep.lhs:
                return True
    for k in known:
        if k.lhs <= dep.lhs and dep.rhs <= k.rhs | dep.lhs:
            return True
    return False
