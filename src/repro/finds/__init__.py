"""Finiteness dependencies (FinDs) and reduced covers.

* :mod:`repro.finds.find` — the FinD value type and refinement order;
* :mod:`repro.finds.closure` — [BB79] attribute closure, entailment,
  exponential reference oracles;
* :mod:`repro.finds.covers` — reduced covers and the operations the
  ``bd`` analysis needs (union, closure-intersection, projection).
"""

from repro.finds.annotations import (
    AnnotationRegistry,
    FunctionAnnotation,
    nonneg_sum_registry,
)
from repro.finds.closure import (
    attribute_closure,
    bounded_variables,
    closure_finds,
    derives_brute_force,
    entails,
    entails_all,
    equivalent_covers,
)
from repro.finds.covers import (
    EXACT_LIMIT,
    cover_intersection,
    cover_project,
    cover_size,
    cover_union,
    mentioned_variables,
    reduce_cover,
)
from repro.finds.find import FinD, find, format_finds, refines

__all__ = [
    "FunctionAnnotation",
    "AnnotationRegistry",
    "nonneg_sum_registry",
    "FinD",
    "find",
    "refines",
    "format_finds",
    "attribute_closure",
    "entails",
    "entails_all",
    "equivalent_covers",
    "bounded_variables",
    "closure_finds",
    "derives_brute_force",
    "reduce_cover",
    "cover_union",
    "cover_intersection",
    "cover_project",
    "cover_size",
    "mentioned_variables",
    "EXACT_LIMIT",
]
