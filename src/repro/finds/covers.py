"""Reduced covers for FinD sets (Section 8 of the paper).

A *reduced cover* is a succinct canonical representative of a FinD set:
singleton decomposition, left-reduction, removal of redundant
dependencies, and merging per left side.  The paper introduces these so
that the translation algorithm can carry FinD information through the
formula without ever materializing exponential closures; the E5
benchmark measures exactly that saving.

Besides reduction, this module implements the three cover operations
``bd`` needs:

* :func:`cover_union` — conjunction: dependencies of either conjunct;
* :func:`cover_intersection` — disjunction: dependencies entailed by
  *both* disjuncts (the closure intersection);
* :func:`cover_project` — quantification: dependencies among the
  remaining variables entailed by the original set (close, then discard
  anything mentioning the quantified variables — rules B10/B11).

Closure intersection and projection are exact (subset enumeration) up
to ``exact_limit`` relevant variables and fall back to a sound
candidate-based heuristic beyond it; the heuristic can only make the
safety analysis more conservative, never unsound.
"""

from __future__ import annotations

from itertools import chain, combinations
from typing import Iterable

from repro.finds.closure import attribute_closure, entails
from repro.finds.find import FinD

__all__ = [
    "reduce_cover",
    "cover_union",
    "cover_intersection",
    "cover_project",
    "cover_size",
    "mentioned_variables",
    "EXACT_LIMIT",
]

#: Default bound on the number of relevant variables up to which the
#: disjunction/projection operations enumerate all subsets exactly.
EXACT_LIMIT = 12


def mentioned_variables(finds: Iterable[FinD]) -> frozenset[str]:
    """All variables occurring in any dependency of the set."""
    out: set[str] = set()
    for dep in finds:
        out |= dep.variables
    return frozenset(out)


def cover_size(finds: Iterable[FinD]) -> int:
    """Total number of variable occurrences — the paper's length measure
    ('time linear in the length of rbd(...)')."""
    return sum(len(dep.lhs) + len(dep.rhs) for dep in finds)


def reduce_cover(finds: Iterable[FinD]) -> frozenset[FinD]:
    """The reduced cover of ``finds``.

    Steps (standard minimal-cover construction, cf. [Mai83], adapted to
    FinDs exactly as the paper adapts FD machinery):

    1. drop trivial dependencies, decompose right sides to singletons;
    2. left-reduce each dependency (remove extraneous LHS variables);
    3. drop dependencies implied by the others;
    4. merge dependencies sharing a left side.

    The result entails, and is entailed by, the input.
    """
    # 1. singleton decomposition
    singles: set[FinD] = set()
    for dep in finds:
        for attr in dep.rhs - dep.lhs:
            singles.add(FinD(dep.lhs, frozenset({attr})))
    working = list(singles)

    # 2. left-reduction
    reduced: list[FinD] = []
    for dep in working:
        lhs = set(dep.lhs)
        for attr in sorted(dep.lhs):
            if attr not in lhs:
                continue
            trial = lhs - {attr}
            if dep.rhs <= attribute_closure(trial, working):
                lhs = trial
        reduced.append(FinD(frozenset(lhs), dep.rhs))
    # deduplicate after left-reduction
    working = list(dict.fromkeys(reduced))

    # 3. redundancy elimination — iterate until stable; removal order is
    # deterministic (sorted) so covers are canonical for equal inputs.
    working.sort(key=lambda d: (sorted(d.lhs), sorted(d.rhs)))
    changed = True
    while changed:
        changed = False
        for i, dep in enumerate(working):
            rest = working[:i] + working[i + 1:]
            if dep.rhs <= attribute_closure(dep.lhs, rest):
                working = rest
                changed = True
                break

    # 4. merge per left side
    merged: dict[frozenset[str], set[str]] = {}
    for dep in working:
        merged.setdefault(dep.lhs, set()).update(dep.rhs)
    return frozenset(FinD(lhs, frozenset(rhs)) for lhs, rhs in merged.items())


def cover_union(*covers: Iterable[FinD]) -> frozenset[FinD]:
    """Reduced cover of the union — the ``bd`` rule for conjunction."""
    combined: set[FinD] = set()
    for cover in covers:
        combined |= set(cover)
    return reduce_cover(combined)


def _subsets(items: frozenset[str]):
    ordered = sorted(items)
    return chain.from_iterable(combinations(ordered, r) for r in range(len(ordered) + 1))


def cover_intersection(covers: list[Iterable[FinD]],
                       exact_limit: int = EXACT_LIMIT) -> frozenset[FinD]:
    """Dependencies entailed by *every* cover — the ``bd`` rule for
    disjunction (B6): a disjunction guarantees only what all branches do.

    Exact when the union of mentioned variables is small (subset
    enumeration of left sides); beyond ``exact_limit`` variables a sound
    candidate heuristic is used (left sides drawn from the input covers
    and their pairwise unions).
    """
    covers = [list(c) for c in covers]
    if not covers:
        return frozenset()
    if len(covers) == 1:
        return reduce_cover(covers[0])

    relevant = frozenset().union(*(mentioned_variables(c) for c in covers))
    out: set[FinD] = set()

    if len(relevant) <= exact_limit:
        candidate_lhss = [frozenset(s) for s in _subsets(relevant)]
    else:
        seeds: set[frozenset[str]] = {frozenset()}
        for cover in covers:
            for dep in cover:
                seeds.add(dep.lhs)
        pairwise = {a | b for a in seeds for b in seeds}
        candidate_lhss = sorted(seeds | pairwise, key=lambda s: (len(s), sorted(s)))

    for lhs in candidate_lhss:
        common = relevant
        for cover in covers:
            common = common & attribute_closure(lhs, cover)
            if not common - lhs:
                break
        rhs = common - lhs
        if rhs:
            out.add(FinD(lhs, rhs))
    return reduce_cover(out)


def cover_project(finds: Iterable[FinD], drop: Iterable[str],
                  exact_limit: int = EXACT_LIMIT) -> frozenset[FinD]:
    """Dependencies among the *remaining* variables entailed by ``finds``
    — the ``bd`` rule for quantifiers (B10/B11): close, then discard
    every dependency in which a quantified variable occurs.

    This is FD projection: for each left side X over the kept variables,
    emit ``X -> (closure(X) & kept) - X``.  Exact up to ``exact_limit``
    kept-and-relevant variables; heuristic (left sides from the input,
    restricted to kept variables) beyond.
    """
    finds = list(finds)
    drop = frozenset(drop)
    if not drop:
        return reduce_cover(finds)
    relevant = mentioned_variables(finds)
    kept = relevant - drop
    out: set[FinD] = set()

    if len(kept) <= exact_limit:
        candidate_lhss = [frozenset(s) for s in _subsets(kept)]
    else:
        seeds: set[frozenset[str]] = {frozenset()}
        for dep in finds:
            seeds.add(dep.lhs & kept)
        pairwise = {a | b for a in seeds for b in seeds}
        candidate_lhss = sorted(seeds | pairwise, key=lambda s: (len(s), sorted(s)))

    for lhs in candidate_lhss:
        closed = attribute_closure(lhs, finds)
        rhs = (closed & kept) - lhs
        if rhs:
            out.add(FinD(lhs, rhs))
    return reduce_cover(out)
