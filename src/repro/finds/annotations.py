"""Finiteness annotations for scalar functions ([RBS87], [Coh86]).

The paper's conclusion points beyond its own framework: *"if u, v, w
range over non-negative integers, then R(w) and u + v = w bounds all of
u, v, w; in this case techniques such as those found in [RBS87] might
be applied."*  The related system of [Coh86] expresses the same
information as annotations like ``PERSON: {1} yields {2}``.

This module implements that extension.  A :class:`FunctionAnnotation`
declares, for a scalar function ``f`` of arity ``n``, that once the
*positions* in ``known`` are fixed, only finitely many values remain
for the positions in ``derived`` — position ``0`` denotes the function
**result**, positions ``1..n`` its arguments.  Examples::

    # the default (always available, not declared): args determine result
    #   known = {1, ..., n}, derived = {0}

    # "w yields u, v" for u + v = w over the non-negative integers:
    FunctionAnnotation("plus", 2, known={0}, derived={1, 2},
                       enumerator="plus_decompositions")

    # subtraction as a partial inverse: result and first arg give the second
    FunctionAnnotation("plus", 2, known={0, 1}, derived={2},
                       enumerator="plus_second_arg")

Each annotation names an **enumerator**, a host-language callable
registered on the :class:`~repro.data.interpretation.Interpretation`.
Called with the known values (result first if position 0 is known, then
arguments in position order), it must yield every tuple of derived
values (in position order) making ``f(args) = result`` true — the
contract [Coh86]'s compiler relies on, realized in the algebra by the
:class:`~repro.algebra.ast.Enumerate` operator.

Annotations are strictly opt-in: without a registry the library
implements exactly the paper's framework (no inverses — the difference
the paper highlights against the DB-windows of [BM92a]).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterable, Iterator

from repro.errors import SchemaError

__all__ = ["FunctionAnnotation", "AnnotationRegistry", "nonneg_sum_registry"]


@dataclass(frozen=True, slots=True)
class FunctionAnnotation:
    """``known`` positions finitely determine ``derived`` positions of
    an application of ``function`` (0 = result, 1..arity = arguments)."""

    function: str
    arity: int
    known: frozenset[int]
    derived: frozenset[int]
    enumerator: str

    def __post_init__(self) -> None:
        if not isinstance(self.known, frozenset):
            object.__setattr__(self, "known", frozenset(self.known))
        if not isinstance(self.derived, frozenset):
            object.__setattr__(self, "derived", frozenset(self.derived))
        positions = set(range(self.arity + 1))
        if not self.known <= positions or not self.derived <= positions:
            raise SchemaError(
                f"annotation positions must lie in 0..{self.arity}")
        if self.known & self.derived:
            raise SchemaError("known and derived positions must be disjoint")
        if not self.derived:
            raise SchemaError("annotation must derive at least one position")
        if not self.enumerator:
            raise SchemaError("annotation needs an enumerator name")

    @property
    def known_order(self) -> tuple[int, ...]:
        """Known positions in the order the enumerator receives them."""
        return tuple(sorted(self.known))

    @property
    def derived_order(self) -> tuple[int, ...]:
        """Derived positions in the order the enumerator yields them."""
        return tuple(sorted(self.derived))

    def __str__(self) -> str:
        k = ",".join(str(p) for p in self.known_order) or "0/"
        d = ",".join(str(p) for p in self.derived_order)
        return f"{self.function}: {{{k}}} yields {{{d}}} via {self.enumerator}"


class AnnotationRegistry:
    """An immutable collection of annotations, indexed by function name.

    Hashable, so it can participate in the memoization of ``bd``.
    """

    def __init__(self, annotations: Iterable[FunctionAnnotation] = ()):
        self._annotations = tuple(annotations)
        self._by_function: dict[str, tuple[FunctionAnnotation, ...]] = {}
        for ann in self._annotations:
            self._by_function.setdefault(ann.function, ())
            self._by_function[ann.function] += (ann,)

    def for_function(self, name: str) -> tuple[FunctionAnnotation, ...]:
        return self._by_function.get(name, ())

    def __iter__(self) -> Iterator[FunctionAnnotation]:
        return iter(self._annotations)

    def __len__(self) -> int:
        return len(self._annotations)

    def __eq__(self, other) -> bool:
        if not isinstance(other, AnnotationRegistry):
            return NotImplemented
        return set(self._annotations) == set(other._annotations)

    def __hash__(self) -> int:
        return hash(frozenset(self._annotations))

    def __repr__(self) -> str:
        return f"AnnotationRegistry({', '.join(str(a) for a in self._annotations)})"


def nonneg_sum_registry() -> AnnotationRegistry:
    """The paper's own example, packaged: ``plus`` over the non-negative
    integers with full inversion annotations.

    The matching enumerators (register on the interpretation)::

        "plus_decompositions": w -> all (u, v) with u + v = w, u, v >= 0
        "plus_second_arg":     (w, u) -> the single v = w - u when v >= 0
    """
    return AnnotationRegistry([
        FunctionAnnotation("plus", 2, frozenset({0}), frozenset({1, 2}),
                           "plus_decompositions"),
        FunctionAnnotation("plus", 2, frozenset({0, 1}), frozenset({2}),
                           "plus_second_arg"),
    ])
