"""Finiteness dependencies (FinDs).

A FinD ``W -> U`` over variable names (adopted and generalized from
[RBS87]) asserts, of a set of valuations, that once the variables of
``W`` are fixed there are only finitely many possible value combinations
for the variables of ``U``.  The special case ``{} -> U`` says the
variables of ``U`` range over a finite set outright.

FinDs satisfy the same inference rules as functional dependencies
(reflexivity, augmentation, transitivity — the paper cites [Ull88] for
this), which is why the [BB79] attribute-closure algorithm applies.

This module defines the :class:`FinD` value type and the *refinement*
partial order of the paper (Section 8, cf. [Arm74])::

    W -> U  refines  X -> Y   iff   W <= X  and  Y <= U

i.e. a refining dependency assumes less and concludes more, so it
implies every dependency it refines.  (Example from the paper:
``x -> zw`` refines ``xy -> z``.)
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterable

__all__ = ["FinD", "find", "refines", "format_finds"]


@dataclass(frozen=True, slots=True)
class FinD:
    """A finiteness dependency ``lhs -> rhs`` over variable names."""

    lhs: frozenset[str]
    rhs: frozenset[str]

    def __post_init__(self) -> None:
        if not isinstance(self.lhs, frozenset):
            object.__setattr__(self, "lhs", frozenset(self.lhs))
        if not isinstance(self.rhs, frozenset):
            object.__setattr__(self, "rhs", frozenset(self.rhs))

    @property
    def variables(self) -> frozenset[str]:
        """All variables mentioned by the dependency."""
        return self.lhs | self.rhs

    def is_trivial(self) -> bool:
        """True when rhs is contained in lhs (implied by reflexivity)."""
        return self.rhs <= self.lhs

    def mentions(self, names: Iterable[str]) -> bool:
        """True when any of ``names`` occurs in the dependency.

        Rules B10/B11 of ``bd`` discard dependencies mentioning the
        quantified variables; this is the test they use.
        """
        names = set(names)
        return bool(names & (self.lhs | self.rhs))

    def __str__(self) -> str:
        left = ",".join(sorted(self.lhs)) if self.lhs else "0"
        right = ",".join(sorted(self.rhs)) if self.rhs else "0"
        return f"{left} -> {right}"

    def __repr__(self) -> str:
        return f"FinD({set(self.lhs) or '{}'} -> {set(self.rhs) or '{}'})"


def find(lhs: Iterable[str] | str, rhs: Iterable[str] | str) -> FinD:
    """Shorthand constructor: ``find("x", "y z")`` or ``find([], ["x"])``.

    Strings are split on whitespace; empty string or empty iterable is
    the empty set.
    """
    def to_set(spec) -> frozenset[str]:
        if isinstance(spec, str):
            return frozenset(spec.split())
        return frozenset(spec)

    return FinD(to_set(lhs), to_set(rhs))


def refines(a: FinD, b: FinD) -> bool:
    """The paper's refinement order: ``a`` refines ``b`` iff ``a.lhs <= b.lhs``
    and ``b.rhs <= a.rhs``.  Reflexive, antisymmetric, transitive."""
    return a.lhs <= b.lhs and b.rhs <= a.rhs


def format_finds(finds: Iterable[FinD]) -> str:
    """Stable human-readable rendering of a FinD set."""
    return "{" + "; ".join(sorted(str(f) for f in finds)) + "}"
