#!/usr/bin/env python3
"""Beyond the core framework: the Section 9 / conclusion extensions.

1. **External predicates** — comparisons in queries (`s > lo`),
   compiled to selections.
2. **Parameterized queries** — 'em-allowed for X': the host program
   supplies parameter values at run time and can batch-bind many
   parameter tuples against one translated plan.
3. **Partial functions** — host functions that are undefined outside
   their domain; atoms involving undefined applications are false.
4. **Finiteness annotations** — the conclusion's own example
   ``R(w) & u + v = w``: rejected by the paper's framework (no function
   inverses), translated and executed once ``plus`` carries
   [RBS87]/[Coh86]-style annotations with enumerators.

Run:  python examples/beyond_the_paper.py
"""

from repro import Instance, Interpretation, evaluate, parse_query, to_algebra_text
from repro.core.schema import DatabaseSchema
from repro.data.interpretation import UNDEFINED
from repro.errors import NotEmAllowedError
from repro.finds.annotations import nonneg_sum_registry
from repro.safety import em_allowed
from repro.translate import (
    bind_parameters,
    parameterized_query,
    translate_parameterized,
    translate_query,
)


def external_predicates() -> None:
    print("=== 1. external predicates (comparisons) ===")
    q = parse_query("{ n, s | EMP(n, s) & s >= 2000 }")
    res = translate_query(q)
    print(f"calculus: {q}")
    print(f"algebra:  {to_algebra_text(res.plan)}")
    inst = Instance.of(EMP=[("ann", 1000), ("bob", 2000), ("cid", 3000)])
    out = evaluate(res.plan, inst, Interpretation({}), schema=res.schema)
    print(f"answer:   {sorted(out.rows)}\n")


def parameterized() -> None:
    print("=== 2. parameterized queries (em-allowed for X) ===")
    schema = DatabaseSchema.of({"EMP": 2}, {})
    pq = parameterized_query(["lo"], ["n"],
                             "exists s (EMP(n, s) & s > lo)", schema)
    result = translate_parameterized(pq, schema)
    print(f"query:    {pq}")
    print(f"plan:     {to_algebra_text(result.plan)}")
    inst = Instance.of(EMP=[("ann", 1000), ("bob", 2000), ("cid", 3000)])
    for batch in ([(1500,)], [(500,), (2500,)]):
        plan = bind_parameters(result.plan, batch)
        out = evaluate(plan, inst, Interpretation({}), schema=result.schema)
        print(f"bind {batch}: {sorted(out.rows, key=repr)}")
    print()


def partial_functions() -> None:
    print("=== 3. partial functions ===")

    def isqrt(v):
        if not isinstance(v, int) or v < 0:
            return UNDEFINED
        root = int(v ** 0.5)
        return root if root * root == v else UNDEFINED

    interp = Interpretation({"isqrt": isqrt})
    inst = Instance.of(R=[(4,), (9,), (10,)])
    q = parse_query("{ x, r | R(x) & isqrt(x) = r }")
    res = translate_query(q)
    out = evaluate(res.plan, inst, interp, schema=res.schema)
    print(f"query:   {q}")
    print(f"answer:  {sorted(out.rows)}  (10 has no integer root)")
    q2 = parse_query("{ x | R(x) & ~S(isqrt(x)) }")
    inst2 = inst.with_relation("S", Instance.of(S=[(2,)]).relation("S"))
    res2 = translate_query(q2)
    out2 = evaluate(res2.plan, inst2, interp, schema=res2.schema)
    print(f"query:   {q2}")
    print(f"answer:  {sorted(out2.rows)}  (undefined atom is false, its "
          "negation true)\n")


def annotations() -> None:
    print("=== 4. finiteness annotations (the conclusion's u + v = w) ===")
    q = parse_query("{ u, v, w | R(w) & plus(u, v) = w }")
    print(f"query:    {q}")
    print(f"em-allowed (paper framework):  {em_allowed(q.body)}")
    try:
        translate_query(q)
    except NotEmAllowedError as err:
        print(f"refused:  {err.reasons[0]}")
    registry = nonneg_sum_registry()
    print(f"em-allowed (with annotations): {em_allowed(q.body, annotations=registry)}")
    res = translate_query(q, annotations=registry)
    print(f"plan:     {to_algebra_text(res.plan)}")
    interp = Interpretation(
        {"plus": lambda u, v: u + v},
        enumerators={
            "plus_decompositions": lambda w: (
                ((u, w - u) for u in range(w + 1))
                if isinstance(w, int) and w >= 0 else ()
            ),
            "plus_second_arg": lambda w, u: (
                ((w - u,),)
                if isinstance(w, int) and isinstance(u, int) and w - u >= 0
                else ()
            ),
        },
    )
    inst = Instance.of(R=[(3,)])
    out = evaluate(res.plan, inst, interp, schema=res.schema)
    print(f"answer:   {sorted(out.rows)}")


def main() -> None:
    external_predicates()
    parameterized()
    partial_functions()
    annotations()


if __name__ == "__main__":
    main()
