#!/usr/bin/env python3
"""Quickstart: parse, safety-check, translate, and run a calculus query
with scalar functions.

This walks the library's core loop on the paper's flagship example
``R(x) & exists y (f(x) = y & ~R(y))`` — a query that is *embedded
allowed* (translatable) even though ``y`` is only reachable through the
scalar function ``f``.

Run:  python examples/quickstart.py
"""

from repro import (
    Instance,
    Interpretation,
    NotEmAllowedError,
    evaluate,
    evaluate_query,
    parse_query,
    to_algebra_text,
    translate_query,
)


def main() -> None:
    # 1. A calculus query in concrete syntax.  Upper-case names are
    #    relations, lower-case applied names are scalar functions.
    q = parse_query("{ x | R(x) & exists y (f(x) = y & ~R(y)) }")
    print(f"query:     {q}")

    # 2. Translate.  The pipeline refuses queries that are not
    #    em-allowed; em-allowed ones always compile (Theorem 7.x).
    result = translate_query(q)
    print(f"algebra:   {to_algebra_text(result.plan)}")
    print(f"trace:     {result.trace.counts()}")

    # 3. Data + an interpretation of the scalar functions, straight
    #    from the host language.
    instance = Instance.of(R=[(1,), (2,), (3,)])
    functions = Interpretation({"f": lambda v: v + 1})

    # 4. Run the plan...
    answer = evaluate(result.plan, instance, functions, schema=result.schema)
    print(f"answer:    {sorted(answer.rows)}")

    # 5. ...and cross-check against the direct calculus semantics.
    reference = evaluate_query(q, instance, functions)
    assert answer == reference
    print("reference: matches the direct calculus evaluation")

    # 6. Unsafe queries are refused with actionable reasons.
    try:
        translate_query(parse_query("{ x, y | R(x) & f(y) = x }"))
    except NotEmAllowedError as err:
        print(f"refused:   {err.reasons[0]}")


if __name__ == "__main__":
    main()
