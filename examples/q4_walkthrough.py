#!/usr/bin/env python3
"""The q4 translation, step by step — the paper's Example 7.6 retold.

q4 is the paper's witness that the natural generalization of [GT91]'s
transformations is incomplete: it is em-allowed (and even [Top91]-safe),
but the only source of bounding for ``y`` — the equalities
``f(x) = y`` etc. — sits *under the negation*, disguised as a
conjunction of inequalities.  The generalized-difference strategy (T15)
cannot run because the context never bounds ``y``; the new
transformation T10 pushes the negation across the conjunction, the
inequalities flip into equalities (T9/T1), and from there T13/T16/T15
finish the job.

This script prints every transformation application the translator
performs and demonstrates the ablation.

Run:  python examples/q4_walkthrough.py
"""

from repro.algebra.printer import explain, to_algebra_text
from repro.engine import execute
from repro.errors import TransformationStuckError
from repro.finds.find import format_finds
from repro.safety import bd, em_allowed, safe_top91
from repro.translate import translate_query
from repro.workloads.gallery import GALLERY, gallery_instance, standard_gallery_interp


def main() -> None:
    entry = GALLERY["q4"]
    query = entry.query

    print("q4 (with its bounding conjunct — see DESIGN.md reconstruction "
          "notes):")
    print(f"  {query}\n")

    print("Safety analysis:")
    print(f"  bd(body)      = {format_finds(bd(query.body))}")
    print(f"  em-allowed    = {em_allowed(query.body)}")
    print(f"  Top91-safe    = {safe_top91(query.body)}  "
          "(the paper: safe, yet untranslatable without T10)\n")

    print("Attempt WITHOUT T10 (T1-T9 and T13-T16 only):")
    try:
        translate_query(query, enable_t10=False)
        print("  translated (this would contradict the paper!)")
    except TransformationStuckError as err:
        message = str(err)
        print(f"  stuck: {message[:100]}...\n")

    print("Full translation, every transformation application:")
    result = translate_query(query)
    for step in result.trace.steps:
        print(f"  {step}")
    print()

    print("Emitted plan:")
    print(f"  {to_algebra_text(result.plan)}\n")
    print("Operator tree:")
    print(explain(result.plan))
    print()

    instance = gallery_instance()
    interp = standard_gallery_interp()
    report = execute(result.plan, instance, interp, schema=result.schema)
    print(f"Execution on the gallery instance: {report.summary()}")
    for row in sorted(report.result.rows, key=repr)[:6]:
        print(f"  {row}")


if __name__ == "__main__":
    main()
