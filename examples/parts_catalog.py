#!/usr/bin/env python3
"""Parts catalog: function composition and direction-mixing disjunction
(Section 3 scenario, reconstructed).

Highlights:

* ``freight`` — the q1 pattern ``{ p, ship_cost(weight(p)) | PART(p) }``
  compiles to a single extended projection applying composed functions;
* ``source_or_alt`` — the q5 pattern: one disjunct derives the supplier
  from the part, the other derives the part column from the supplier
  directory function; no single global derivation order exists, which
  is exactly why [Top91]'s safe class misses it while em-allowed
  translates it;
* ``all_local`` — universal quantification compiled as a set
  difference.

Run:  python examples/parts_catalog.py
"""

from repro import to_algebra_text, translate_query
from repro.engine import execute
from repro.safety import em_allowed_query, safe_top91
from repro.workloads.practical import parts_scenario


def main() -> None:
    scenario = parts_scenario()
    instance = scenario.instance(scale=9, seed=7)

    print("=== parts catalog ===")
    print(f"parts:      {sorted(v[0] for v in instance.relation('PART'))}")
    print(f"suppliers:  {sorted(v[0] for v in instance.relation('LOCAL'))} are local")
    print()

    for name, query in scenario.queries.items():
        print(f"--- {name}: {scenario.descriptions[name]}")
        print(f"calculus:   {query}")
        print(f"em-allowed: {em_allowed_query(query)}, "
              f"Top91-safe: {safe_top91(query.body)}")
        result = translate_query(query, schema=scenario.schema)
        print(f"algebra:    {to_algebra_text(result.plan)}")
        report = execute(result.plan, instance, scenario.interpretation,
                         schema=result.schema)
        print(f"engine:     {report.summary()}")
        for row in sorted(report.result.rows, key=repr)[:6]:
            print(f"            {row}")
        print()


if __name__ == "__main__":
    main()
