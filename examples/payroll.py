#!/usr/bin/env python3
"""Payroll: arithmetic scalar functions in practical queries
(Section 3 scenario, reconstructed).

The interesting query is ``safe_raises``: employees whose *raised*
salary — a value computed by the scalar function ``bump``, present
nowhere in the database — avoids the audit list.  Classic
range-restriction ([AB88]) rejects it; the paper's em-allowed criterion
accepts it and the translation binds the computed value with an
extended projection.

Run:  python examples/payroll.py
"""

from repro import evaluate, to_algebra_text, translate_query
from repro.engine import execute
from repro.safety import em_allowed_query, range_restricted
from repro.workloads.practical import payroll_scenario


def main() -> None:
    scenario = payroll_scenario()
    instance = scenario.instance(scale=10, seed=42)

    print("=== payroll scenario ===")
    print(f"schema: {scenario.schema}")
    print(f"EMP rows: {sorted(instance.relation('EMP').rows)[:5]} ...")
    print(f"AUDIT rows: {sorted(instance.relation('AUDIT').rows)}")
    print()

    for name, query in scenario.queries.items():
        print(f"--- {name}: {scenario.descriptions[name]}")
        print(f"calculus: {query}")
        print(f"em-allowed: {em_allowed_query(query)}, "
              f"range-restricted: {range_restricted(query.body)}")

        result = translate_query(query, schema=scenario.schema)
        print(f"algebra:  {to_algebra_text(result.plan)}")

        report = execute(result.plan, instance, scenario.interpretation,
                         schema=result.schema)
        print(f"engine:   {report.summary()}")
        for row in sorted(report.result.rows, key=repr)[:5]:
            print(f"          {row}")
        if len(report.result) > 5:
            print(f"          ... ({len(report.result)} rows total)")
        print()

    # Sanity: the set evaluator agrees with the engine on every query.
    for name, query in scenario.queries.items():
        result = translate_query(query, schema=scenario.schema)
        via_sets = evaluate(result.plan, instance, scenario.interpretation,
                            schema=result.schema)
        via_engine = execute(result.plan, instance, scenario.interpretation,
                             schema=result.schema).result
        assert via_sets == via_engine, name
    print("all plans: engine == set-evaluator ✔")


if __name__ == "__main__":
    main()
