#!/usr/bin/env python3
"""Safety lab: explore the paper's machinery on its own examples.

Walks the intro gallery (q1–q5 and friends) through every analysis the
library implements:

* ``bd`` — the finiteness dependencies each body guarantees;
* the four safety criteria (em-allowed, [GT91] allowed, [Top91] safe,
  [AB88] range-restricted) and where they disagree;
* the transformation trace of each translation, including the paper's
  headline: q4 needs the new transformation T10 — run without it, the
  translator is provably stuck;
* an embedded-domain-independence falsification attempt per query
  (Theorem 6.6 in action: em-allowed queries survive, q6/q7 do not).

Run:  python examples/safety_lab.py
"""

from repro.errors import NotEmAllowedError, TransformationStuckError
from repro.finds.find import format_finds
from repro.safety import (
    allowed,
    bd,
    em_allowed,
    range_restricted,
    safe_top91,
)
from repro.semantics import edi_witness
from repro.translate import translate_query
from repro.workloads.gallery import GALLERY, gallery_instance, standard_gallery_interp


def main() -> None:
    instance = gallery_instance()
    interp = standard_gallery_interp()

    for key, entry in GALLERY.items():
        query = entry.query
        body = query.body
        print(f"=== {key}: {entry.description}")
        print(f"    {query}")
        print(f"    bd(body) = {format_finds(bd(body))}")
        print(f"    em-allowed={em_allowed(body)}  allowed[GT91]={allowed(body)}  "
              f"safe[Top91]={safe_top91(body)}  range-restricted={range_restricted(body)}")

        try:
            result = translate_query(query)
        except NotEmAllowedError as err:
            print(f"    translation refused: {err.reasons[0]}")
        else:
            trace = {k: v for k, v in result.trace.counts().items()
                     if k.startswith("T")}
            print(f"    transformations: {trace}")
            if entry.needs_t10:
                try:
                    translate_query(query, enable_t10=False)
                except TransformationStuckError:
                    print("    without T10: STUCK — the paper's new "
                          "transformation is necessary here")

        report = edi_witness(query, instance, interp, trials=3)
        verdict = ("embedded domain independent (no witness in "
                   f"{report.trials} perturbations)"
                   if report.independent
                   else f"NOT domain independent — {report.witness}")
        print(f"    EDI check at level {report.level}: {verdict}")
        print()


if __name__ == "__main__":
    main()
